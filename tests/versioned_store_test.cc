// Versioned copy-on-write parameter store: snapshot serving must be
// bit-for-bit identical to synchronous inline serving in every configuration
// (1D chunked rounds, wavefront overwrites, stripe counts, key-range vs
// hashed stripes, fault injection, crash recovery), while gather tasks copy
// from pinned snapshots without holding a stripe lock.
//
// Unit layer: the publish -> pin -> clone-on-write -> retire lifecycle of
// VersionedCellStore (no copy when unique, copy when pinned, hashed inserts
// invisible to older snapshots, collapse back to a flat CellStore).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/dsm/dist_array_buffer.h"
#include "src/dsm/versioned_store.h"
#include "src/net/fault_injector.h"
#include "src/runtime/driver.h"

namespace orion {
namespace {

constexpr i64 kP = VersionedCellStore::kPageCells;

// ---------------------------------------------------------------------------
// Unit: snapshot isolation and page-refcount lifecycle.

TEST(VersionedStore, SnapshotIsolationDense) {
  constexpr i32 kDim = 2;
  constexpr i64 kCells = 2 * kP + 77;  // three pages, last partial
  CellStore flat(kDim, CellStore::Layout::kFullDense, kCells);
  for (i64 k = 0; k < kCells; ++k) {
    f32* v = flat.GetOrCreate(k);
    v[0] = static_cast<f32>(k);
    v[1] = static_cast<f32>(-k);
  }
  VersionedCellStore store(std::move(flat));
  EXPECT_FALSE(store.paged());
  store.BeginServing();
  EXPECT_TRUE(store.paged());
  EXPECT_EQ(store.num_pages(), 3);
  EXPECT_EQ(store.NumCells(), kCells);

  VersionedCellStore::Snapshot snap = store.Pin();
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(store.live_pins(), 1);

  // Writer touches page 0 and page 2; the pinned snapshot keeps the old
  // values, a fresh pin observes the new ones.
  store.GetOrCreate(3)[0] = 1000.0f;
  store.GetOrCreate(2 * kP + 5)[1] = 2000.0f;
  EXPECT_EQ(snap.Get(3)[0], 3.0f);
  EXPECT_EQ(snap.Get(2 * kP + 5)[1], static_cast<f32>(-(2 * kP + 5)));
  EXPECT_EQ(store.Get(3)[0], 1000.0f);

  VersionedCellStore::Snapshot snap2 = store.Pin();
  EXPECT_EQ(snap2.Get(3)[0], 1000.0f);
  EXPECT_EQ(snap2.Get(2 * kP + 5)[1], 2000.0f);
  EXPECT_EQ(snap2.Get(kP + 1)[0], static_cast<f32>(kP + 1));  // untouched page

  snap.Release();
  snap2.Release();
  EXPECT_EQ(store.live_pins(), 0);

  const VersionedCellStore::Stats s = store.TakeStats();
  EXPECT_EQ(s.pins, 2u);
  EXPECT_EQ(s.pages_cloned, 2u);  // pages 0 and 2, exactly once each
  EXPECT_EQ(s.cow_bytes, 2u * static_cast<u64>(kP) * kDim * sizeof(f32));

  // Collapse restores a plain CellStore with the mutated contents.
  CellStore& back = store.Flat();
  EXPECT_FALSE(store.paged());
  EXPECT_EQ(back.NumCells(), kCells);
  EXPECT_EQ(back.Get(3)[0], 1000.0f);
  EXPECT_EQ(back.Get(2 * kP + 5)[1], 2000.0f);
  EXPECT_EQ(back.Get(kP + 1)[0], static_cast<f32>(kP + 1));
}

TEST(VersionedStore, NoCopyWhenUnique) {
  CellStore flat(1, CellStore::Layout::kFullDense, kP + 10);
  VersionedCellStore store(std::move(flat));
  store.BeginServing();

  // Pin and release: once no snapshot is live, writes claim pages in place.
  store.Pin().Release();
  EXPECT_EQ(store.live_pins(), 0);
  store.GetOrCreate(1)[0] = 5.0f;
  store.GetOrCreate(kP + 1)[0] = 6.0f;
  const VersionedCellStore::Stats s = store.TakeStats();
  EXPECT_EQ(s.pins, 1u);
  EXPECT_EQ(s.pages_cloned, 0u);
  EXPECT_EQ(s.cow_bytes, 0u);
  EXPECT_EQ(store.Get(1)[0], 5.0f);
}

TEST(VersionedStore, PageRefcountLifecycle) {
  CellStore flat(1, CellStore::Layout::kFullDense, 2 * kP);
  for (i64 k = 0; k < 2 * kP; ++k) {
    *flat.GetOrCreate(k) = static_cast<f32>(k);
  }
  VersionedCellStore store(std::move(flat));
  store.BeginServing();
  // One page table references each page.
  EXPECT_EQ(store.PageUseCount(0), 1);
  EXPECT_EQ(store.PageUseCount(kP), 1);

  VersionedCellStore::Snapshot snap = store.Pin();
  // COW write to page 0: the writer's table is cloned, page 0 forks (fresh,
  // uniquely owned), page 1 is now shared by both tables.
  store.GetOrCreate(0)[0] = -1.0f;
  EXPECT_EQ(store.PageUseCount(0), 1);
  EXPECT_EQ(store.PageUseCount(kP), 2);
  EXPECT_EQ(snap.Get(0)[0], 0.0f);  // pinned version unchanged

  // Retire: releasing the last snapshot drops the old table and with it the
  // old page 0; the shared page returns to a single owner.
  snap.Release();
  EXPECT_EQ(store.live_pins(), 0);
  EXPECT_EQ(store.PageUseCount(kP), 1);

  // Repeated writes to an already-forked page never clone again.
  const u64 cloned_before = store.stats().pages_cloned;
  store.GetOrCreate(1)[0] = -2.0f;
  EXPECT_EQ(store.stats().pages_cloned, cloned_before);
}

TEST(VersionedStore, HashedInsertInvisibleToOlderSnapshots) {
  CellStore flat(1, CellStore::Layout::kHashed, 0);
  for (i64 key : {11, 42, 900}) {
    *flat.GetOrCreate(key) = static_cast<f32>(key);
  }
  VersionedCellStore store(std::move(flat));
  store.BeginServing();
  VersionedCellStore::Snapshot snap = store.Pin();

  // Insert a new key and mutate an old one while pinned.
  *store.GetOrCreate(7777) = 1.0f;
  *store.GetOrCreate(42) = -42.0f;
  EXPECT_EQ(snap.Get(7777), nullptr);  // index was cloned before the insert
  EXPECT_EQ(snap.Get(42)[0], 42.0f);
  EXPECT_EQ(store.Get(7777)[0], 1.0f);
  EXPECT_EQ(store.Get(42)[0], -42.0f);
  EXPECT_EQ(store.NumCells(), 4);

  VersionedCellStore::Snapshot snap2 = store.Pin();
  EXPECT_EQ(snap2.Get(7777)[0], 1.0f);
  snap.Release();
  snap2.Release();

  CellStore& back = store.Flat();
  EXPECT_EQ(back.NumCells(), 4);
  EXPECT_EQ(back.Get(7777)[0], 1.0f);
  EXPECT_EQ(back.Get(42)[0], -42.0f);
  EXPECT_EQ(back.Get(11)[0], 11.0f);
}

TEST(VersionedStore, AssignDropsPagesAndGoesFlat) {
  CellStore flat(1, CellStore::Layout::kFullDense, kP);
  VersionedCellStore store(std::move(flat));
  store.BeginServing();
  store.Pin().Release();

  CellStore replacement(1, CellStore::Layout::kFullDense, 3);
  *replacement.GetOrCreate(2) = 9.0f;
  store = std::move(replacement);  // the recovery-restore path
  EXPECT_FALSE(store.paged());
  EXPECT_EQ(store.NumCells(), 3);
  EXPECT_EQ(store.Get(2)[0], 9.0f);
}

// ---------------------------------------------------------------------------
// Integration: 1D chunked loops served from snapshots.
//
// The workload is arrival-invariant by construction — reads hit a read-only
// server table and writes are additive integer-valued updates to a
// write-only server array — so the final state is bitwise independent of
// mid-pass apply interleaving and async serving can be compared bit-for-bit
// against inline serving across worker timings.

std::map<i64, std::vector<f32>> Snapshot(Driver* d, DistArrayId id) {
  std::map<i64, std::vector<f32>> out;
  const CellStore& c = d->Cells(id);
  c.ForEachConst([&](i64 key, const f32* v) { out[key].assign(v, v + c.value_dim()); });
  return out;
}

::testing::AssertionResult BitIdentical(const std::map<i64, std::vector<f32>>& a,
                                        const std::map<i64, std::vector<f32>>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "cell counts differ: " << a.size() << " vs " << b.size();
  }
  for (const auto& [key, va] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      return ::testing::AssertionFailure() << "key " << key << " missing";
    }
    if (va.size() != it->second.size() ||
        std::memcmp(va.data(), it->second.data(), va.size() * sizeof(f32)) != 0) {
      return ::testing::AssertionFailure() << "key " << key << " differs bitwise";
    }
  }
  return ::testing::AssertionSuccess();
}

struct OneDOptions {
  bool versioned = true;
  bool key_range_stripes = true;
  int shards = 4;
  int rounds = 2;
  int workers = 4;
  int passes = 3;
  PrefetchMode prefetch = PrefetchMode::kBulk;
  FaultPlan fault_plan;
  bool recovery = false;
  std::string recovery_dir;
};

struct OneDResult {
  std::map<i64, std::vector<f32>> table_w;
  f64 accum = 0.0;
  LoopMetrics last;
  RuntimeMetrics runtime;
};

OneDResult RunOneD(const OneDOptions& opt) {
  constexpr i64 kSamples = 96;
  constexpr i64 kKeys = 700;  // ~3 pages when paginated

  DriverConfig cfg;
  cfg.num_workers = opt.workers;
  cfg.seed = 19;
  cfg.async_param_serving = true;
  cfg.param_server_shards = opt.shards;
  cfg.versioned_store = opt.versioned;
  cfg.param_key_range_stripes = opt.key_range_stripes;
  cfg.fault_plan = opt.fault_plan;
  if (cfg.fault_plan.Active()) {
    cfg.supervisor.enabled = true;
    cfg.supervisor.heartbeat_interval_seconds = 0.02;
    cfg.supervisor.retry_initial_seconds = 0.02;
    cfg.supervisor.death_timeout_seconds = 2.0;
  }
  Driver driver(cfg);

  auto samples = driver.CreateDistArray("samples", {kSamples}, 3, Density::kDense);
  auto table_r = driver.CreateDistArray("table_r", {kKeys}, 2, Density::kDense);
  auto table_w = driver.CreateDistArray("table_w", {kKeys}, 1, Density::kDense);
  driver.MapCells(samples, [](i64 key, f32* v) {
    v[0] = static_cast<f32>((key * 31 + 7) % kKeys);   // read key
    v[1] = static_cast<f32>((key * 17 + 3) % kKeys);   // write key
    v[2] = static_cast<f32>(1 + key % 5);              // small integer payload
  });
  driver.MapCells(table_r, [](i64 key, f32* v) {
    v[0] = static_cast<f32>(key % 11);
    v[1] = static_cast<f32>(key % 7);
  });
  driver.RegisterBuffer(table_w, 1, MakeAddApplyFn());
  const int acc = driver.CreateAccumulator();

  LoopSpec spec;
  spec.iter_space = samples;
  spec.iter_extents = {kSamples};
  spec.AddAccess(table_r, "table_r", {Expr::Runtime("rk")}, /*is_write=*/false);
  spec.AddAccess(table_w, "table_w", {Expr::Runtime("wk")}, /*is_write=*/true,
                 /*buffered=*/true);

  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    (void)idx;
    const i64 rk[1] = {static_cast<i64>(value[0])};
    const i64 wk[1] = {static_cast<i64>(value[1])};
    const f32* t = ctx.Read(table_r, rk);
    // Integer-valued f32 arithmetic: adds are exact, so the merged result is
    // independent of apply order.
    const f32 upd = value[2] * (t[0] + 1.0f);
    ctx.BufferUpdate(table_w, wk, &upd);
    ctx.AccumulatorAdd(acc, static_cast<f64>(upd));
  };

  ParallelForOptions options;
  options.prefetch = opt.prefetch;
  options.server_sync_rounds = opt.rounds;
  options.planner.replicate_threshold_floats = 0;  // force both tables -> kServer
  auto loop = driver.Compile(spec, kernel, options);
  EXPECT_TRUE(loop.ok()) << loop.status();
  EXPECT_EQ(driver.PlanOf(*loop).form, ParallelForm::k1D);
  EXPECT_EQ(driver.PlanOf(*loop).placements.at(table_r).scheme, PartitionScheme::kServer);
  EXPECT_EQ(driver.PlanOf(*loop).placements.at(table_w).scheme, PartitionScheme::kServer);

  if (opt.recovery) {
    driver.EnableRecovery({table_w}, opt.recovery_dir, /*every_n_passes=*/2);
  }
  OneDResult res;
  for (int p = 0; p < opt.passes; ++p) {
    EXPECT_TRUE(driver.Execute(*loop).ok());
  }
  res.last = driver.last_metrics();
  res.runtime = driver.runtime_metrics();
  res.table_w = Snapshot(&driver, table_w);
  res.accum = driver.AccumulatorValue(acc);
  return res;
}

TEST(VersionedServing1D, AsyncMatchesInlineAcrossStripesAndRounds) {
  OneDOptions inline_opt;
  inline_opt.versioned = false;  // 1D without the versioned store = inline path
  const OneDResult ref = RunOneD(inline_opt);
  EXPECT_EQ(ref.last.versioned_snapshot_pins, 0u);

  for (int shards : {1, 4}) {
    for (bool key_range : {false, true}) {
      for (int rounds : {1, 2, 4}) {
        OneDOptions o;
        o.shards = shards;
        o.key_range_stripes = key_range;
        o.rounds = rounds;
        const OneDResult got = RunOneD(o);
        EXPECT_TRUE(BitIdentical(ref.table_w, got.table_w))
            << "shards=" << shards << " key_range=" << key_range
            << " rounds=" << rounds;
        EXPECT_EQ(ref.accum, got.accum) << "shards=" << shards << " rounds=" << rounds;
        // Snapshot serving actually ran: pins were taken, and gather tasks
        // held no stripe lock (zero busy time across every stripe).
        EXPECT_GT(got.last.versioned_snapshot_pins, 0u);
        ASSERT_EQ(got.last.stripes.size(), static_cast<size_t>(shards));
        u64 busy = 0;
        u64 tasks = 0;
        for (const auto& s : got.last.stripes) {
          busy += s.busy_ns;
          tasks += s.tasks;
        }
        EXPECT_EQ(busy, 0u) << "snapshot gathers must not hold stripe locks";
        EXPECT_GT(tasks, 0u);
      }
    }
  }
}

TEST(VersionedServing1D, ReadOwnWritesSingleWorker) {
  // One worker, multiple rounds, float (non-integer) math, reads and
  // buffered writes to the SAME server array: round r+1's request must
  // observe round r's flushes. With one worker the run is fully
  // deterministic, so inline and snapshot serving must agree bitwise even
  // though the values are order-sensitive floats.
  static constexpr i64 kSamples = 64;
  static constexpr i64 kKeys = 300;

  auto run = [&](bool versioned) {
    DriverConfig cfg;
    cfg.num_workers = 1;
    cfg.seed = 5;
    cfg.async_param_serving = true;
    cfg.param_server_shards = 4;
    cfg.versioned_store = versioned;
    Driver driver(cfg);

    auto samples = driver.CreateDistArray("samples", {kSamples}, 2, Density::kDense);
    auto weights = driver.CreateDistArray("weights", {kKeys}, 1, Density::kDense);
    driver.MapCells(samples, [](i64 key, f32* v) {
      v[0] = static_cast<f32>((key * 13 + 1) % kKeys);
      v[1] = 0.25f + 0.001f * static_cast<f32>(key);
    });
    driver.MapCells(weights, [](i64 key, f32* v) {
      v[0] = 0.1f * static_cast<f32>(key % 9);
    });
    driver.RegisterBuffer(weights, 1, MakeAddApplyFn());

    LoopSpec spec;
    spec.iter_space = samples;
    spec.iter_extents = {kSamples};
    spec.AddAccess(weights, "weights", {Expr::Runtime("k")}, /*is_write=*/false);
    spec.AddAccess(weights, "weights", {Expr::Runtime("k")}, /*is_write=*/true,
                   /*buffered=*/true);
    LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
      (void)idx;
      const i64 k[1] = {static_cast<i64>(value[0])};
      const f32 w = ctx.Read(weights, k)[0];
      const f32 g = value[1] * (1.0f - w);  // depends on the freshest w
      ctx.BufferUpdate(weights, k, &g);
    };

    ParallelForOptions options;
    options.server_sync_rounds = 4;
    options.planner.replicate_threshold_floats = 0;
    auto loop = driver.Compile(spec, kernel, options);
    EXPECT_TRUE(loop.ok()) << loop.status();
    for (int p = 0; p < 3; ++p) {
      EXPECT_TRUE(driver.Execute(*loop).ok());
    }
    return Snapshot(&driver, weights);
  };

  EXPECT_TRUE(BitIdentical(run(false), run(true)));
}

// ---------------------------------------------------------------------------
// Integration: wavefront/lockstep mid-pass overwrites racing pinned gathers.
// The skewed recurrence C[i][j] = C[i-1][j] + C[i][j-1] + B[i][j] has a
// unique solution, so every serving configuration must reproduce the serial
// result exactly; server-hosted C is both prefetched per step (gathers) and
// overwritten mid-step (kOverwrite flushes), the hottest COW path.

std::vector<f32> RunRecurrence(bool versioned, bool key_range, int shards,
                               u64* busy_ns, u64* pages_cloned) {
  const i64 n = 14;
  const i64 m = 11;

  DriverConfig cfg;
  cfg.num_workers = 3;
  cfg.async_param_serving = true;
  cfg.param_server_shards = shards;
  cfg.versioned_store = versioned;
  cfg.param_key_range_stripes = key_range;
  Driver driver(cfg);
  auto grid = driver.CreateDistArray("grid", {n, m}, 1, Density::kSparse);
  auto b = driver.CreateDistArray("B", {n, m}, 1, Density::kDense);
  auto c = driver.CreateDistArray("C", {n, m}, 1, Density::kDense);
  {
    CellStore& cells = driver.MutableCells(grid);
    for (i64 i = 0; i < n; ++i) {
      for (i64 j = 0; j < m; ++j) {
        *cells.GetOrCreate(i * m + j) = 1.0f;
      }
    }
    Rng rng(31);
    driver.MapCells(b, [&](i64, f32* v) { v[0] = static_cast<f32>(rng.NextBounded(5)); });
  }

  LoopSpec spec;
  spec.iter_space = grid;
  spec.iter_extents = {n, m};
  spec.AddAccess(c, "C", {Expr::LoopIndex(0), Expr::LoopIndex(1)}, /*is_write=*/true);
  spec.AddAccess(c, "C", {Expr::Sub(Expr::LoopIndex(0), Expr::Const(1)), Expr::LoopIndex(1)},
                 /*is_write=*/false);
  spec.AddAccess(c, "C", {Expr::LoopIndex(0), Expr::Sub(Expr::LoopIndex(1), Expr::Const(1))},
                 /*is_write=*/false);
  spec.AddAccess(b, "B", {Expr::LoopIndex(0), Expr::LoopIndex(1)}, /*is_write=*/false);
  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    (void)value;
    const i64 i = idx[0];
    const i64 j = idx[1];
    f32 up = 0.0f;
    f32 left = 0.0f;
    if (i > 0) {
      const i64 ku[2] = {i - 1, j};
      up = ctx.Read(c, ku)[0];
    }
    if (j > 0) {
      const i64 kl[2] = {i, j - 1};
      left = ctx.Read(c, kl)[0];
    }
    const i64 kb[2] = {i, j};
    f32* out = ctx.Mutate(c, kb);
    out[0] = up + left + ctx.Read(b, kb)[0];
  };

  auto loop = driver.Compile(spec, kernel, {});
  EXPECT_TRUE(loop.ok()) << loop.status();
  EXPECT_TRUE(driver.Execute(*loop).ok());
  const LoopMetrics& lm = driver.last_metrics();
  *busy_ns = 0;
  for (const auto& s : lm.stripes) {
    *busy_ns += s.busy_ns;
  }
  *pages_cloned = lm.versioned_pages_cloned;

  std::vector<f32> out;
  const CellStore& got = driver.Cells(c);
  out.reserve(static_cast<size_t>(n * m));
  for (i64 k = 0; k < n * m; ++k) {
    const f32* v = got.Get(k);
    out.push_back(v != nullptr ? v[0] : 0.0f);
  }
  return out;
}

TEST(VersionedServing2D, WavefrontOverwritesVsConcurrentGathers) {
  u64 busy = 0;
  u64 cloned = 0;
  const std::vector<f32> ref = RunRecurrence(false, false, 4, &busy, &cloned);
  EXPECT_EQ(cloned, 0u);

  for (int shards : {1, 4}) {
    for (bool key_range : {false, true}) {
      u64 locked_busy = 0;
      const std::vector<f32> locked =
          RunRecurrence(false, key_range, shards, &locked_busy, &cloned);
      EXPECT_EQ(ref, locked) << "locked shards=" << shards << " kr=" << key_range;

      u64 snap_busy = 0;
      const std::vector<f32> versioned =
          RunRecurrence(true, key_range, shards, &snap_busy, &cloned);
      EXPECT_EQ(ref, versioned) << "versioned shards=" << shards << " kr=" << key_range;
      // Snapshot gathers never hold a stripe lock.
      EXPECT_EQ(snap_busy, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Adaptive prefetch depth: any controller-chosen depth is bit-for-bit
// identical for rotation loops, and the effective depth is exported.

TEST(AdaptiveDepth, RotationBitForBitAndExported) {
  constexpr i64 kRows = 18;
  constexpr i64 kCols = 18;

  auto run = [&](int depth_max) {
    DriverConfig cfg;
    cfg.num_workers = 3;
    cfg.seed = 7;
    cfg.net.latency_us = 200.0;
    cfg.net.bandwidth_bps = 1e9;
    Driver driver(cfg);
    auto data = driver.CreateDistArray("data", {kRows, kCols}, 1, Density::kSparse);
    auto out_r = driver.CreateDistArray("out_r", {kRows}, 1, Density::kDense);
    auto table = driver.CreateDistArray("table", {kRows + kCols - 1}, 1, Density::kDense);
    {
      Rng rng(3);
      CellStore& cells = driver.MutableCells(data);
      for (i64 s = 0; s < 260; ++s) {
        const i64 i = static_cast<i64>(rng.NextBounded(kRows));
        const i64 j = static_cast<i64>(rng.NextBounded(kCols));
        *cells.GetOrCreate(i * kCols + j) = 1.0f + static_cast<f32>(s % 3);
      }
      driver.MapCells(table, [](i64 key, f32* v) {
        v[0] = 0.25f + 0.01f * static_cast<f32>(key);
      });
    }
    LoopSpec spec;
    spec.iter_space = data;
    spec.iter_extents = {kRows, kCols};
    spec.AddAccess(out_r, "out_r", {Expr::LoopIndex(0)}, /*is_write=*/true);
    spec.AddAccess(table, "table",
                   {Expr::Add(Expr::LoopIndex(0), Expr::LoopIndex(1))},
                   /*is_write=*/false);
    LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
      const i64 k[1] = {idx[0] + idx[1]};
      const i64 ki[1] = {idx[0]};
      ctx.Mutate(out_r, ki)[0] += value[0] * ctx.Read(table, k)[0];
    };
    ParallelForOptions options;
    options.prefetch = PrefetchMode::kCached;
    options.prefetch_depth = 2;
    options.prefetch_depth_max = depth_max;
    options.planner.replicate_threshold_floats = 0;
    auto loop = driver.Compile(spec, kernel, options);
    EXPECT_TRUE(loop.ok()) << loop.status();
    std::vector<int> depths;
    for (int p = 0; p < 5; ++p) {
      EXPECT_TRUE(driver.Execute(*loop).ok());
      depths.push_back(driver.last_metrics().prefetch_depth_effective);
    }
    const MetricsRegistry reg = driver.ExportMetrics();
    return std::make_tuple(Snapshot(&driver, out_r), depths, reg.ToJson(),
                           reg.Gauge("prefetch.depth_effective"),
                           reg.Series("prefetch.depth_effective") != nullptr
                               ? *reg.Series("prefetch.depth_effective")
                               : std::vector<double>{});
  };

  auto [ref_cells, ref_depths, ref_json, ref_gauge, ref_series] = run(0);
  for (int d : ref_depths) {
    EXPECT_EQ(d, 0) << "static config reports no adaptive depth";
  }
  (void)ref_json;
  (void)ref_gauge;
  (void)ref_series;

  auto [cells, depths, json, gauge, series] = run(4);
  EXPECT_TRUE(BitIdentical(ref_cells, cells));
  for (int d : depths) {
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 4);
  }
  EXPECT_GE(gauge, 1.0);
  EXPECT_LE(gauge, 4.0);
  ASSERT_EQ(series.size(), 5u);  // one point per pass
  EXPECT_NE(json.find("\"prefetch.depth_effective\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Chaos: message faults and a mid-run crash with versioned serving active.

TEST(VersionedServingChaos, MessageFaultsStayBitForBit) {
  OneDOptions inline_opt;
  inline_opt.versioned = false;
  const OneDResult ref = RunOneD(inline_opt);

  OneDOptions chaos;
  chaos.fault_plan.seed = 13;
  chaos.fault_plan.drop_prob = 0.05;
  chaos.fault_plan.dup_prob = 0.05;
  chaos.fault_plan.delay_prob = 0.05;
  const OneDResult got = RunOneD(chaos);
  EXPECT_TRUE(BitIdentical(ref.table_w, got.table_w));
  EXPECT_EQ(ref.accum, got.accum);
  EXPECT_GT(got.last.versioned_snapshot_pins, 0u);
}

TEST(VersionedServingChaos, CrashRecoveryRestoresPagedMaster) {
  OneDOptions crash;
  crash.passes = 5;
  crash.recovery = true;
  crash.recovery_dir = ::testing::TempDir() + "/orion_versioned_crash";
  std::filesystem::create_directories(crash.recovery_dir);
  crash.fault_plan.seed = 29;
  crash.fault_plan.crashes = {{/*rank=*/1, /*pass=*/2, /*step=*/-1}};

  OneDOptions clean = crash;
  clean.fault_plan = FaultPlan{};
  clean.recovery_dir = ::testing::TempDir() + "/orion_versioned_clean";
  std::filesystem::create_directories(clean.recovery_dir);

  const OneDResult want = RunOneD(clean);
  const OneDResult got = RunOneD(crash);
  // The crashed run recovered from the checkpoint (restoring straight over
  // the paginated master) and replayed to the same state as the clean run.
  EXPECT_EQ(got.runtime.crashes_triggered, 1u);
  EXPECT_EQ(got.runtime.workers_lost, 1u);
  EXPECT_EQ(got.runtime.recoveries, 1u);
  EXPECT_TRUE(BitIdentical(want.table_w, got.table_w));
}

}  // namespace
}  // namespace orion
