// Log-structured durability: delta-log round trips, torn-write crash sweeps,
// point-in-time restore, master restart, and worker rejoin (ROADMAP
// "log-structured durability").
//
// The E2E workload is the arrival-invariant 1D server workload from
// versioned_store_test: reads hit a read-only server table, writes are
// additive integer-valued updates, so every restore/replay configuration can
// be compared bit-for-bit against an uninterrupted run.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/common/durable_io.h"
#include "src/dsm/delta_log.h"
#include "src/dsm/dist_array_buffer.h"
#include "src/dsm/versioned_store.h"
#include "src/net/fault_injector.h"
#include "src/runtime/driver.h"

namespace orion {
namespace {

// Tests run as parallel ctest processes; each needs its own log dir, and a
// stale dir from a previous run must not leak state into this one.
std::string LogDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/orion_dur_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

using CellMap = std::map<i64, std::vector<f32>>;

CellMap StoreSnapshot(const VersionedCellStore& s) {
  CellMap out;
  const i32 vdim = s.value_dim();
  s.ForEachConst([&](i64 key, const f32* v) { out[key].assign(v, v + vdim); });
  return out;
}

CellMap CellsSnapshot(const CellStore& c) {
  CellMap out;
  c.ForEachConst([&](i64 key, const f32* v) { out[key].assign(v, v + c.value_dim()); });
  return out;
}

::testing::AssertionResult BitIdentical(const CellMap& a, const CellMap& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "cell counts differ: " << a.size() << " vs " << b.size();
  }
  for (const auto& [key, va] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      return ::testing::AssertionFailure() << "key " << key << " missing";
    }
    if (va.size() != it->second.size() ||
        std::memcmp(va.data(), it->second.data(), va.size() * sizeof(f32)) != 0) {
      return ::testing::AssertionFailure() << "key " << key << " differs bitwise";
    }
  }
  return ::testing::AssertionSuccess();
}

void WriteFileRaw(const std::string& path, const std::vector<u8>& bytes, size_t n) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()), static_cast<std::streamsize>(n));
}

// ---- Delta log unit tests ----

TEST(DeltaLog, DenseRoundTripBaseThenDelta) {
  const std::string dir = LogDir("roundtrip");
  CellStore flat(1, CellStore::Layout::kFullDense, 700);
  for (i64 k = 0; k < 700; ++k) {
    *flat.GetOrCreate(k) = static_cast<f32>(k % 7);
  }
  VersionedCellStore store(std::move(flat));
  store.BeginServing();
  ASSERT_EQ(store.num_pages(), 3);

  auto writer = DeltaLogWriter::Open(dir, {/*compact_every=*/8});
  ASSERT_TRUE(writer.ok()) << writer.status();

  MasterRecord m0;
  m0.next_pass = 0;
  m0.config_seed = 7;
  m0.num_workers = 4;
  m0.live_ranks = {0, 1, 2, 3};
  m0.accumulators = {1.5};
  const CellMap snap0 = StoreSnapshot(store);
  auto s0 = (*writer)->AppendCheckpoint(m0, {{"t", &store}});
  ASSERT_TRUE(s0.ok()) << s0.status();
  EXPECT_TRUE(s0->wrote_base);
  EXPECT_FALSE(s0->compacted);
  EXPECT_TRUE(store.delta_tracking_valid());

  // Dirty two of the three pages; the next checkpoint ships exactly those.
  store.GetOrCreate(5)[0] = 42.0f;
  store.GetOrCreate(600)[0] = -1.0f;
  MasterRecord m1 = m0;
  m1.next_pass = 1;
  m1.accumulators = {2.5};
  const CellMap snap1 = StoreSnapshot(store);
  auto s1 = (*writer)->AppendCheckpoint(m1, {{"t", &store}});
  ASSERT_TRUE(s1.ok()) << s1.status();
  EXPECT_FALSE(s1->wrote_base);
  EXPECT_EQ(s1->pages_deltad, 2u);
  EXPECT_EQ(s1->full_arrays, 0);
  EXPECT_LT(s1->bytes_appended, s0->bytes_appended);

  auto reader = DeltaLogReader::Open(dir);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_FALSE(reader->torn_tail());
  ASSERT_EQ(reader->points().size(), 2u);
  EXPECT_EQ(reader->points()[0].pass, 0);
  EXPECT_EQ(reader->points()[1].pass, 1);

  auto at0 = reader->StateAtPass(0);
  ASSERT_TRUE(at0.ok()) << at0.status();
  EXPECT_TRUE(BitIdentical(snap0, CellsSnapshot(at0->arrays.at("t"))));
  EXPECT_EQ(at0->master.accumulators, std::vector<f64>{1.5});
  EXPECT_EQ(at0->master.config_seed, 7u);
  EXPECT_EQ(at0->master.live_ranks, (std::vector<i32>{0, 1, 2, 3}));

  auto at1 = reader->Latest();
  ASSERT_TRUE(at1.ok()) << at1.status();
  EXPECT_TRUE(BitIdentical(snap1, CellsSnapshot(at1->arrays.at("t"))));
  EXPECT_EQ(at1->master.next_pass, 1);

  EXPECT_EQ(reader->StateAt(99).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(reader->StateAtPass(7).status().code(), StatusCode::kNotFound);
}

TEST(DeltaLog, HashedGrowthAndCompaction) {
  const std::string dir = LogDir("compact");
  CellStore flat(2, CellStore::Layout::kHashed, 0);
  for (i64 k = 0; k < 300; ++k) {
    f32* v = flat.GetOrCreate(k * 3);
    v[0] = static_cast<f32>(k);
    v[1] = static_cast<f32>(k) + 0.5f;
  }
  VersionedCellStore store(std::move(flat));
  store.BeginServing();

  auto writer = DeltaLogWriter::Open(dir, {/*compact_every=*/2});
  ASSERT_TRUE(writer.ok()) << writer.status();
  MasterRecord m;
  auto append = [&](i64 pass) {
    m.next_pass = pass;
    return (*writer)->AppendCheckpoint(m, {{"t", &store}});
  };

  ASSERT_TRUE(append(0).ok());  // base

  // Delta with hashed growth: new keys past the checkpoint mark.
  store.GetOrCreate(12)[0] = 100.0f;
  store.GetOrCreate(9001)[1] = 7.0f;
  store.GetOrCreate(9002)[0] = 8.0f;
  auto d1 = append(1);
  ASSERT_TRUE(d1.ok()) << d1.status();
  EXPECT_FALSE(d1->wrote_base);
  EXPECT_GE(d1->pages_deltad, 1u);

  store.GetOrCreate(9001)[0] = 9.0f;
  ASSERT_TRUE(append(2).ok());  // second delta: at the compaction threshold

  store.GetOrCreate(21)[1] = -3.0f;
  const CellMap live = StoreSnapshot(store);
  auto d3 = append(3);
  ASSERT_TRUE(d3.ok()) << d3.status();
  EXPECT_TRUE(d3->wrote_base);   // folded: 2 records + this one > compact_every
  EXPECT_TRUE(d3->compacted);

  auto reader = DeltaLogReader::Open(dir);
  ASSERT_TRUE(reader.ok()) << reader.status();
  // History before the fold is gone; the base is the only restorable point.
  ASSERT_EQ(reader->points().size(), 1u);
  EXPECT_EQ(reader->points()[0].pass, 3);
  auto latest = reader->Latest();
  ASSERT_TRUE(latest.ok()) << latest.status();
  EXPECT_TRUE(BitIdentical(live, CellsSnapshot(latest->arrays.at("t"))));

  // Appends continue as deltas on top of the fresh base.
  store.GetOrCreate(9001)[0] = 11.0f;
  const CellMap live2 = StoreSnapshot(store);
  ASSERT_TRUE(append(4).ok());
  auto reader2 = DeltaLogReader::Open(dir);
  ASSERT_TRUE(reader2.ok());
  ASSERT_EQ(reader2->points().size(), 2u);
  auto latest2 = reader2->Latest();
  ASSERT_TRUE(latest2.ok());
  EXPECT_TRUE(BitIdentical(live2, CellsSnapshot(latest2->arrays.at("t"))));
}

// Crash-at-every-byte-offset sweep: truncating the WAL at any length must
// leave a log that opens cleanly and restores a valid prefix of the recorded
// checkpoints — never corrupt cells, never a crash.
TEST(DeltaLog, TornTailSweepRestoresValidPrefix) {
  const std::string dir = LogDir("torn_src");
  CellStore flat(1, CellStore::Layout::kFullDense, 8);
  for (i64 k = 0; k < 8; ++k) {
    *flat.GetOrCreate(k) = static_cast<f32>(k);
  }
  VersionedCellStore store(std::move(flat));
  store.BeginServing();

  auto writer = DeltaLogWriter::Open(dir, {/*compact_every=*/0});
  ASSERT_TRUE(writer.ok());
  std::vector<CellMap> expected;  // state at each recorded point
  MasterRecord m;
  for (i64 pass = 0; pass < 4; ++pass) {
    if (pass > 0) {
      store.GetOrCreate(pass % 8)[0] = 100.0f + static_cast<f32>(pass);
    }
    expected.push_back(StoreSnapshot(store));
    m.next_pass = pass;
    ASSERT_TRUE((*writer)->AppendCheckpoint(m, {{"t", &store}}).ok());
  }

  auto base_bytes = ReadFileBytes(dir + "/base.orib");
  auto wal_bytes = ReadFileBytes(dir + "/wal.oril");
  ASSERT_TRUE(base_bytes.ok());
  ASSERT_TRUE(wal_bytes.ok());
  ASSERT_GT(wal_bytes->size(), 0u);

  // A replacement state for append-after-truncation: a flat store (no page
  // tracking) so the appended record is a self-contained full image.
  CellStore repl_flat(1, CellStore::Layout::kFullDense, 8);
  for (i64 k = 0; k < 8; ++k) {
    *repl_flat.GetOrCreate(k) = 0.5f * static_cast<f32>(k);
  }
  VersionedCellStore repl(std::move(repl_flat));
  const CellMap repl_snap = StoreSnapshot(repl);

  const std::string tdir = LogDir("torn_case");
  for (size_t len = 0; len < wal_bytes->size(); ++len) {
    std::filesystem::remove_all(tdir);
    std::filesystem::create_directories(tdir);
    WriteFileRaw(tdir + "/base.orib", *base_bytes, base_bytes->size());
    WriteFileRaw(tdir + "/wal.oril", *wal_bytes, len);

    auto reader = DeltaLogReader::Open(tdir);
    ASSERT_TRUE(reader.ok()) << "len=" << len << ": " << reader.status();
    const size_t npoints = reader->points().size();
    ASSERT_GE(npoints, 1u) << "len=" << len;       // the base always survives
    ASSERT_LE(npoints, expected.size()) << "len=" << len;
    EXPECT_LE(reader->valid_wal_bytes(), len) << "len=" << len;
    for (size_t p = 0; p < npoints; ++p) {
      ASSERT_EQ(reader->points()[p].pass, static_cast<i64>(p)) << "len=" << len;
      auto st = reader->StateAt(reader->points()[p].seq);
      ASSERT_TRUE(st.ok()) << "len=" << len << " point=" << p;
      EXPECT_TRUE(BitIdentical(expected[p], CellsSnapshot(st->arrays.at("t"))))
          << "len=" << len << " point=" << p;
    }

    // A writer reopening over the torn tail truncates it and appends cleanly.
    auto rewriter = DeltaLogWriter::Open(tdir, {/*compact_every=*/0});
    ASSERT_TRUE(rewriter.ok()) << "len=" << len << ": " << rewriter.status();
    MasterRecord mr;
    mr.next_pass = 50;
    ASSERT_TRUE((*rewriter)->AppendCheckpoint(mr, {{"t", &repl}}).ok()) << "len=" << len;
    auto reader2 = DeltaLogReader::Open(tdir);
    ASSERT_TRUE(reader2.ok()) << "len=" << len;
    ASSERT_EQ(reader2->points().size(), npoints + 1) << "len=" << len;
    EXPECT_FALSE(reader2->torn_tail()) << "len=" << len;
    auto latest = reader2->Latest();
    ASSERT_TRUE(latest.ok()) << "len=" << len;
    EXPECT_EQ(latest->master.next_pass, 50) << "len=" << len;
    EXPECT_TRUE(BitIdentical(repl_snap, CellsSnapshot(latest->arrays.at("t"))))
        << "len=" << len;
  }

  // Bit-flip sweep: corruption anywhere in the WAL (headers included — the
  // checksum covers seq and size, not just the payload) yields a valid
  // prefix, never wrong cells.
  for (size_t off = 0; off < wal_bytes->size(); off += 3) {
    std::filesystem::remove_all(tdir);
    std::filesystem::create_directories(tdir);
    WriteFileRaw(tdir + "/base.orib", *base_bytes, base_bytes->size());
    std::vector<u8> flipped = *wal_bytes;
    flipped[off] ^= 0x40;
    WriteFileRaw(tdir + "/wal.oril", flipped, flipped.size());

    auto reader = DeltaLogReader::Open(tdir);
    ASSERT_TRUE(reader.ok()) << "off=" << off;
    const size_t npoints = reader->points().size();
    ASSERT_GE(npoints, 1u);
    ASSERT_LE(npoints, expected.size()) << "off=" << off;
    for (size_t p = 0; p < npoints; ++p) {
      auto st = reader->StateAt(reader->points()[p].seq);
      ASSERT_TRUE(st.ok()) << "off=" << off;
      EXPECT_TRUE(BitIdentical(expected[p], CellsSnapshot(st->arrays.at("t"))))
          << "off=" << off << " point=" << p;
    }
  }

  // A corrupt *base* is a clean open error — nothing to restore from.
  std::filesystem::remove_all(tdir);
  std::filesystem::create_directories(tdir);
  std::vector<u8> bad_base = *base_bytes;
  bad_base[bad_base.size() / 2] ^= 0x01;
  WriteFileRaw(tdir + "/base.orib", bad_base, bad_base.size());
  auto broken = DeltaLogReader::Open(tdir);
  EXPECT_FALSE(broken.ok());
}

// ---- E2E: the arrival-invariant 1D server workload ----

constexpr i64 kSamples = 96;
constexpr i64 kKeys = 4096;  // 16 pages when paginated

struct WlOptions {
  int workers = 4;
  u64 seed = 19;
  FaultPlan fault_plan;
};

// Sparse-write server workload: reads spread over all of table_r, writes
// confined to keys [0, 64) — one dirty page out of 16 — so delta checkpoints
// stay far below a full image.
class Workload {
 public:
  explicit Workload(const WlOptions& opt) : driver_(MakeCfg(opt)) {
    samples_ = driver_.CreateDistArray("samples", {kSamples}, 3, Density::kDense);
    table_r_ = driver_.CreateDistArray("table_r", {kKeys}, 1, Density::kDense);
    table_w_ = driver_.CreateDistArray("table_w", {kKeys}, 1, Density::kDense);
    driver_.MapCells(samples_, [](i64 key, f32* v) {
      v[0] = static_cast<f32>((key * 31 + 7) % kKeys);  // read key
      v[1] = static_cast<f32>((key * 17 + 3) % 64);     // write key: page 0 only
      v[2] = static_cast<f32>(1 + key % 5);             // integer payload
    });
    driver_.MapCells(table_r_, [](i64 key, f32* v) {
      v[0] = static_cast<f32>(key % 11);
    });
    driver_.MapCells(table_w_, [](i64 key, f32* v) {
      v[0] = static_cast<f32>(key % 5);
    });
    driver_.RegisterBuffer(table_w_, 1, MakeAddApplyFn());
    acc_ = driver_.CreateAccumulator();

    LoopSpec spec;
    spec.iter_space = samples_;
    spec.iter_extents = {kSamples};
    spec.AddAccess(table_r_, "table_r", {Expr::Runtime("rk")}, /*is_write=*/false);
    spec.AddAccess(table_w_, "table_w", {Expr::Runtime("wk")}, /*is_write=*/true,
                   /*buffered=*/true);
    const DistArrayId table_r = table_r_;
    const DistArrayId table_w = table_w_;
    const int acc = acc_;
    LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
      (void)idx;
      const i64 rk[1] = {static_cast<i64>(value[0])};
      const i64 wk[1] = {static_cast<i64>(value[1])};
      const f32 upd = value[2] * (ctx.Read(table_r, rk)[0] + 1.0f);
      ctx.BufferUpdate(table_w, wk, &upd);
      ctx.AccumulatorAdd(acc, static_cast<f64>(upd));
    };
    ParallelForOptions options;
    options.server_sync_rounds = 2;
    options.planner.replicate_threshold_floats = 0;  // both tables -> kServer
    auto loop = driver_.Compile(spec, kernel, options);
    EXPECT_TRUE(loop.ok()) << loop.status();
    loop_ = *loop;
  }

  Status EnableLog(const std::string& dir, int compact_every = 8,
                   bool rejoin = false) {
    Driver::DurabilityOptions o;
    o.every_n_passes = 1;
    o.compact_every = compact_every;
    o.rejoin_crashed_workers = rejoin;
    return driver_.EnableDurability({table_w_}, dir, o);
  }

  Status RunPasses(int n) {
    for (int p = 0; p < n; ++p) {
      Status s = driver_.Execute(loop_);
      if (!s.ok()) {
        return s;
      }
    }
    return Status::Ok();
  }

  CellMap SnapshotW() { return CellsSnapshot(driver_.Cells(table_w_)); }
  f64 Accum() const { return driver_.AccumulatorValue(acc_); }
  Driver& driver() { return driver_; }
  DistArrayId table_w() const { return table_w_; }

 private:
  static DriverConfig MakeCfg(const WlOptions& opt) {
    DriverConfig cfg;
    cfg.num_workers = opt.workers;
    cfg.seed = opt.seed;
    cfg.async_param_serving = true;
    cfg.param_server_shards = 4;
    cfg.versioned_store = true;
    cfg.param_key_range_stripes = true;
    cfg.fault_plan = opt.fault_plan;
    if (cfg.fault_plan.Active()) {
      cfg.supervisor.enabled = true;
      cfg.supervisor.heartbeat_interval_seconds = 0.02;
      cfg.supervisor.retry_initial_seconds = 0.02;
      cfg.supervisor.death_timeout_seconds = 1.0;
    }
    return cfg;
  }

  Driver driver_;
  DistArrayId samples_ = kInvalidDistArrayId;
  DistArrayId table_r_ = kInvalidDistArrayId;
  DistArrayId table_w_ = kInvalidDistArrayId;
  int acc_ = -1;
  i32 loop_ = -1;
};

TEST(DurabilityE2E, DeltaBytesStayFarBelowFullCheckpoints) {
  const int kPasses = 10;
  WlOptions opt;
  Workload wl(opt);
  ASSERT_TRUE(wl.EnableLog(LogDir("delta_scale"), /*compact_every=*/0).ok());
  ASSERT_TRUE(wl.RunPasses(kPasses).ok());

  // One full serialized image of table_w, for scale.
  ByteWriter full;
  wl.driver().Cells(wl.table_w()).Serialize(&full);
  const u64 full_bytes = full.bytes().size();

  const RuntimeMetrics rm = wl.driver().runtime_metrics();
  // Baseline + one per pass; all but the base and the first post-pagination
  // record are delta appends.
  EXPECT_EQ(rm.checkpoints_written, static_cast<u64>(kPasses) + 1);
  EXPECT_GE(rm.delta_checkpoints, static_cast<u64>(kPasses) - 2);
  EXPECT_GT(rm.pages_deltad, 0u);
  // Writes are confined to one page of sixteen, so each delta is a small
  // fraction of a full image; the whole log costs less than 40% of writing
  // full checkpoints every pass.
  EXPECT_LT(rm.pages_deltad, 2 * rm.delta_checkpoints);
  EXPECT_LT(rm.log_bytes_appended, (static_cast<u64>(kPasses) + 1) * full_bytes * 2 / 5);
  EXPECT_EQ(rm.compactions, 0u);

  // The counters surface through the unified registry and the critical-path
  // report grows a checkpoint-stall column.
  const MetricsRegistry reg = wl.driver().ExportMetrics();
  EXPECT_EQ(reg.Counter("durability.delta_checkpoints"), rm.delta_checkpoints);
  EXPECT_EQ(reg.Counter("durability.log_bytes_appended"), rm.log_bytes_appended);
  EXPECT_EQ(reg.Counter("durability.pages_deltad"), rm.pages_deltad);
  EXPECT_EQ(reg.Counter("durability.compactions"), 0u);
  EXPECT_EQ(reg.Counter("durability.worker_rejoins"), 0u);
  EXPECT_NE(wl.driver().CriticalPathReport().find("ckpt"), std::string::npos);

  // Every pass is a restore point.
  auto points = wl.driver().DurabilityPoints();
  ASSERT_TRUE(points.ok()) << points.status();
  ASSERT_EQ(points->size(), static_cast<size_t>(kPasses) + 1);
  EXPECT_EQ(points->front().pass, 0);
  EXPECT_EQ(points->back().pass, kPasses);
}

TEST(DurabilityE2E, CompactionFoldsTheLog) {
  WlOptions opt;
  Workload wl(opt);
  ASSERT_TRUE(wl.EnableLog(LogDir("compact_e2e"), /*compact_every=*/3).ok());
  ASSERT_TRUE(wl.RunPasses(8).ok());
  const RuntimeMetrics rm = wl.driver().runtime_metrics();
  EXPECT_GE(rm.compactions, 1u);
  auto points = wl.driver().DurabilityPoints();
  ASSERT_TRUE(points.ok());
  // Compaction trims history: far fewer live points than checkpoints taken.
  EXPECT_LT(points->size(), rm.checkpoints_written);
  EXPECT_EQ(points->back().pass, 8);
  // The trimmed log still restores the latest state exactly.
  const CellMap before = wl.SnapshotW();
  ASSERT_TRUE(wl.driver().RestoreToPass(8).ok());
  EXPECT_TRUE(BitIdentical(before, wl.SnapshotW()));
}

TEST(DurabilityE2E, MasterRestartResumesBitForBit) {
  const std::string dir = LogDir("master_restart");

  WlOptions opt;
  Workload ref(opt);
  ASSERT_TRUE(ref.EnableLog(LogDir("master_restart_ref")).ok());
  ASSERT_TRUE(ref.RunPasses(6).ok());
  const CellMap want = ref.SnapshotW();
  const f64 want_acc = ref.Accum();

  {
    Workload a(opt);
    ASSERT_TRUE(a.EnableLog(dir).ok());
    ASSERT_TRUE(a.RunPasses(3).ok());
    // Driver a dies here; the log directory is all that survives.
  }

  // A fresh master: same deterministic program, resumed from the log.
  Workload b(opt);
  ASSERT_TRUE(b.EnableLog(dir).ok());
  auto resumed = b.driver().ResumeFromLog();
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(*resumed, 3);
  EXPECT_GT(b.driver().runtime_metrics().restore_seconds, 0.0);
  ASSERT_TRUE(b.RunPasses(3).ok());

  EXPECT_TRUE(BitIdentical(want, b.SnapshotW()));
  EXPECT_EQ(want_acc, b.Accum());

  // A mismatched configuration must refuse to resume.
  WlOptions other = opt;
  other.seed = 99;
  Workload c(other);
  ASSERT_TRUE(c.EnableLog(dir).ok());
  EXPECT_EQ(c.driver().ResumeFromLog().status().code(), StatusCode::kInvalidArgument);
}

TEST(DurabilityE2E, PointInTimeRestoreIsBitForBit) {
  WlOptions opt;

  Workload ref4(opt);
  ASSERT_TRUE(ref4.EnableLog(LogDir("pit_ref4")).ok());
  ASSERT_TRUE(ref4.RunPasses(4).ok());
  const CellMap want4 = ref4.SnapshotW();
  const f64 want4_acc = ref4.Accum();

  Workload wl(opt);
  ASSERT_TRUE(wl.EnableLog(LogDir("pit")).ok());
  ASSERT_TRUE(wl.RunPasses(6).ok());
  const CellMap want6 = wl.SnapshotW();
  const f64 want6_acc = wl.Accum();

  // Rewind the live cluster to the state right after pass 4.
  ASSERT_TRUE(wl.driver().RestoreToPass(4).ok());
  EXPECT_TRUE(BitIdentical(want4, wl.SnapshotW()));
  EXPECT_EQ(want4_acc, wl.Accum());

  // Training continues from the restored point and lands exactly where the
  // uninterrupted run did.
  ASSERT_TRUE(wl.RunPasses(2).ok());
  EXPECT_TRUE(BitIdentical(want6, wl.SnapshotW()));
  EXPECT_EQ(want6_acc, wl.Accum());

  EXPECT_EQ(wl.driver().RestoreToPass(77).code(), StatusCode::kNotFound);
}

TEST(DurabilityE2E, WorkerCrashRejoinsAndMatchesCleanRunBitForBit) {
  WlOptions clean_opt;
  Workload clean(clean_opt);
  ASSERT_TRUE(clean.EnableLog(LogDir("rejoin_clean")).ok());
  ASSERT_TRUE(clean.RunPasses(5).ok());
  const CellMap want = clean.SnapshotW();
  const f64 want_acc = clean.Accum();

  WlOptions chaos_opt;
  chaos_opt.fault_plan.seed = 29;
  chaos_opt.fault_plan.crashes = {{/*rank=*/1, /*pass=*/2, /*step=*/-1}};
  Workload chaos(chaos_opt);
  ASSERT_TRUE(chaos.EnableLog(LogDir("rejoin_chaos"), /*compact_every=*/8,
                              /*rejoin=*/true)
                  .ok());
  ASSERT_TRUE(chaos.RunPasses(5).ok());

  const RuntimeMetrics rm = chaos.driver().runtime_metrics();
  EXPECT_EQ(rm.crashes_triggered, 1u);
  EXPECT_EQ(rm.workers_lost, 1u);
  EXPECT_EQ(rm.recoveries, 1u);
  EXPECT_EQ(rm.worker_rejoins, 1u);
  EXPECT_GT(rm.restore_seconds, 0.0);
  // The crashed rank is back: full-strength ring, not the retired N-1.
  EXPECT_EQ(chaos.driver().live_ranks().size(), 4u);

  EXPECT_TRUE(BitIdentical(want, chaos.SnapshotW()));
  EXPECT_EQ(want_acc, chaos.Accum());
}

// ---- Satellite: no false-positive death during long state transfers ----

// A worker that was just sent a bulk transfer installs it silently; with a
// death timeout shorter than the install, the old supervisor declared it
// dead and cascaded a pointless recovery. The state-transfer grace window
// must keep it alive until it first speaks.
TEST(DurabilitySupervision, StateTransferGraceAvoidsFalseDeath) {
  constexpr i64 kCells = 1'000'000;  // ~16 MB scattered + ~4 MB written back

  auto run = [&](double grace_seconds) {
    DriverConfig cfg;
    cfg.num_workers = 2;
    cfg.seed = 3;
    cfg.supervisor.enabled = true;
    cfg.supervisor.heartbeat_interval_seconds = 0.01;
    cfg.supervisor.retry_initial_seconds = 0.02;
    cfg.supervisor.death_timeout_seconds = 0.05;  // << install time
    cfg.supervisor.state_transfer_grace_seconds = grace_seconds;
    Driver driver(cfg);
    auto samples = driver.CreateDistArray("samples", {kCells}, 4, Density::kDense);
    auto out = driver.CreateDistArray("out", {kCells}, 1, Density::kDense);
    driver.MapCells(samples, [](i64 key, f32* v) {
      v[0] = static_cast<f32>(key % 13);
      v[1] = v[2] = v[3] = 0.0f;
    });
    LoopSpec spec;
    spec.iter_space = samples;
    spec.iter_extents = {kCells};
    spec.AddAccess(out, "out", {Expr::LoopIndex(0)}, /*is_write=*/true);
    LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
      const i64 k[1] = {idx[0]};
      ctx.Mutate(out, k)[0] = value[0] + 1.0f;
    };
    auto loop = driver.Compile(spec, kernel, {});
    EXPECT_TRUE(loop.ok()) << loop.status();
    return driver.Execute(*loop);
  };

  // Regression: with the grace window (default-sized), the scatter install
  // must never be mistaken for death, no matter how slow the machine.
  const Status ok_status = run(/*grace_seconds=*/10.0);
  EXPECT_TRUE(ok_status.ok()) << ok_status;

  // Without the grace window this is the old behavior: on machines where the
  // install outruns the 50ms timeout the worker is falsely declared dead.
  // Both outcomes are legal here — the arm documents the failure mode, and
  // the failure must be the clean "lost worker" path, not a hang or crash.
  const Status bare_status = run(/*grace_seconds=*/0.0);
  if (!bare_status.ok()) {
    EXPECT_NE(bare_status.message().find("lost"), std::string::npos);
  }
}

}  // namespace
}  // namespace orion
