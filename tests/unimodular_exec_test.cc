// End-to-end execution of a unimodular-transformed (skewed wavefront) loop:
// the 2-D recurrence C[i][j] = C[i-1][j] + C[i][j-1] + B[i][j].
//
// Neither 1D nor 2D parallelization applies (deps (1,0) and (0,1), and the
// offset accesses prevent aligned placement), so the planner must find a
// skewing transform and execute an ordered wavefront over the transformed
// iteration space with server-hosted reads/writes. The recurrence has a
// unique solution, so the distributed result must match the serial one
// exactly.
#include <gtest/gtest.h>

#include "src/runtime/driver.h"

namespace orion {
namespace {

class UnimodularExecTest : public ::testing::TestWithParam<int> {};

TEST_P(UnimodularExecTest, SkewedWavefrontSolvesRecurrence) {
  const int workers = GetParam();
  const i64 n = 14;
  const i64 m = 11;

  DriverConfig cfg;
  cfg.num_workers = workers;
  Driver driver(cfg);
  auto grid = driver.CreateDistArray("grid", {n, m}, 1, Density::kSparse);
  auto b = driver.CreateDistArray("B", {n, m}, 1, Density::kDense);
  auto c = driver.CreateDistArray("C", {n, m}, 1, Density::kDense);

  {
    CellStore& cells = driver.MutableCells(grid);
    for (i64 i = 0; i < n; ++i) {
      for (i64 j = 0; j < m; ++j) {
        *cells.GetOrCreate(i * m + j) = 1.0f;
      }
    }
    Rng rng(31);
    driver.MapCells(b, [&](i64, f32* v) { v[0] = static_cast<f32>(rng.NextBounded(5)); });
  }

  LoopSpec spec;
  spec.iter_space = grid;
  spec.iter_extents = {n, m};
  spec.AddAccess(c, "C", {Expr::LoopIndex(0), Expr::LoopIndex(1)}, /*is_write=*/true);
  spec.AddAccess(c, "C", {Expr::Sub(Expr::LoopIndex(0), Expr::Const(1)), Expr::LoopIndex(1)},
                 /*is_write=*/false);
  spec.AddAccess(c, "C", {Expr::LoopIndex(0), Expr::Sub(Expr::LoopIndex(1), Expr::Const(1))},
                 /*is_write=*/false);
  spec.AddAccess(b, "B", {Expr::LoopIndex(0), Expr::LoopIndex(1)}, /*is_write=*/false);

  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 i = idx[0];
    const i64 j = idx[1];
    f32 up = 0.0f;
    f32 left = 0.0f;
    if (i > 0) {
      const i64 ku[2] = {i - 1, j};
      up = ctx.Read(c, ku)[0];
    }
    if (j > 0) {
      const i64 kl[2] = {i, j - 1};
      left = ctx.Read(c, kl)[0];
    }
    const i64 kb[2] = {i, j};
    const f32 add = ctx.Read(b, kb)[0];
    f32* out = ctx.Mutate(c, kb);
    out[0] = up + left + add;
  };

  auto loop = driver.Compile(spec, kernel, {});
  ASSERT_TRUE(loop.ok()) << loop.status();
  const auto& plan = driver.PlanOf(*loop);
  ASSERT_EQ(plan.form, ParallelForm::k2DUnimodular) << plan.ToString();
  EXPECT_FALSE(plan.transform.IsIdentity());
  ASSERT_TRUE(driver.Execute(*loop).ok());

  // Serial recurrence.
  std::vector<f32> want(static_cast<size_t>(n * m), 0.0f);
  const CellStore& bvals = driver.Cells(b);
  for (i64 i = 0; i < n; ++i) {
    for (i64 j = 0; j < m; ++j) {
      const f32 up = i > 0 ? want[static_cast<size_t>((i - 1) * m + j)] : 0.0f;
      const f32 left = j > 0 ? want[static_cast<size_t>(i * m + j - 1)] : 0.0f;
      want[static_cast<size_t>(i * m + j)] = up + left + bvals.Get(i * m + j)[0];
    }
  }

  const CellStore& got = driver.Cells(c);
  for (i64 i = 0; i < n; ++i) {
    for (i64 j = 0; j < m; ++j) {
      const f32* v = got.Get(i * m + j);
      ASSERT_NE(v, nullptr);
      EXPECT_FLOAT_EQ(v[0], want[static_cast<size_t>(i * m + j)])
          << "C[" << i << "][" << j << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, UnimodularExecTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace orion
