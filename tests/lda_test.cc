// LDA: planner derives 2D unordered with replicated topic totals; Gibbs
// sampling must improve log-likelihood at a rate comparable to serial
// (paper Fig. 9c).
#include <gtest/gtest.h>

#include "src/apps/lda.h"

namespace orion {
namespace {

CorpusConfig SmallCorpus() {
  CorpusConfig c;
  c.num_docs = 300;
  c.vocab = 500;
  c.true_topics = 8;
  c.doc_length = 40;
  c.seed = 11;
  return c;
}

LdaConfig SmallLda() {
  LdaConfig l;
  l.num_topics = 8;
  return l;
}

TEST(Lda, PlannerPicks2DWithReplicatedTotals) {
  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);
  LdaApp app(&driver, SmallLda());
  auto corpus = GenerateCorpus(SmallCorpus());
  ASSERT_TRUE(app.Init(corpus, 300, 500).ok());

  const auto& plan = app.train_plan();
  EXPECT_EQ(plan.form, ParallelForm::k2D);
  EXPECT_FALSE(plan.ordered);
  EXPECT_EQ(plan.placements.at(app.topic_sum()).scheme, PartitionScheme::kReplicated);
  // One of doc_topic / word_topic is local (space-aligned), the other
  // rotates.
  const auto dt = plan.placements.at(app.doc_topic()).scheme;
  const auto wt = plan.placements.at(app.word_topic()).scheme;
  EXPECT_TRUE((dt == PartitionScheme::kRange && wt == PartitionScheme::kSpaceTime) ||
              (dt == PartitionScheme::kSpaceTime && wt == PartitionScheme::kRange));
}

TEST(Lda, ConvergesCloseToSerial) {
  auto corpus = GenerateCorpus(SmallCorpus());

  SerialLda serial(corpus, 300, 500, SmallLda());
  const f64 ll0 = serial.EvalLogLikelihood();
  for (int p = 0; p < 15; ++p) {
    serial.RunPass();
  }
  const f64 serial_ll = serial.EvalLogLikelihood();
  EXPECT_GT(serial_ll, ll0 + 0.1);  // log-likelihood must improve

  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);
  LdaApp app(&driver, SmallLda());
  ASSERT_TRUE(app.Init(corpus, 300, 500).ok());
  auto first = app.EvalLogLikelihood();
  ASSERT_TRUE(first.ok());
  EXPECT_NEAR(*first, ll0, 0.05);  // same initialization statistics
  for (int p = 0; p < 15; ++p) {
    ASSERT_TRUE(app.RunPass().ok());
  }
  auto last = app.EvalLogLikelihood();
  ASSERT_TRUE(last.ok());
  EXPECT_GT(*last, ll0 + 0.1);
  // Dependence-aware parallel Gibbs should land near the serial quality.
  EXPECT_GT(*last, serial_ll - 0.2);
}

TEST(Lda, CountsStayConsistent) {
  // After several passes, doc_topic / word_topic / topic_sum must still sum
  // to the token count (conservation under in-place updates + buffered
  // totals).
  auto corpus = GenerateCorpus(SmallCorpus());
  i64 total = 0;
  for (const auto& t : corpus) {
    total += std::min<i32>(t.count, 7);
  }

  DriverConfig cfg;
  cfg.num_workers = 3;
  Driver driver(cfg);
  LdaApp app(&driver, SmallLda());
  ASSERT_TRUE(app.Init(corpus, 300, 500).ok());
  for (int p = 0; p < 3; ++p) {
    ASSERT_TRUE(app.RunPass().ok());
  }

  f64 dt_sum = 0.0;
  driver.MutableCells(app.doc_topic()).ForEach([&](i64, f32* v) {
    for (int x = 0; x < 8; ++x) {
      dt_sum += v[x];
      EXPECT_GE(v[x], 0.0f);
    }
  });
  f64 wt_sum = 0.0;
  driver.MutableCells(app.word_topic()).ForEach([&](i64, f32* v) {
    for (int x = 0; x < 8; ++x) {
      wt_sum += v[x];
      EXPECT_GE(v[x], 0.0f);
    }
  });
  f64 ts_sum = 0.0;
  driver.MutableCells(app.topic_sum()).ForEach([&](i64, f32* v) {
    for (int x = 0; x < 8; ++x) {
      ts_sum += v[x];
    }
  });
  EXPECT_DOUBLE_EQ(dt_sum, static_cast<f64>(total));
  EXPECT_DOUBLE_EQ(wt_sum, static_cast<f64>(total));
  EXPECT_DOUBLE_EQ(ts_sum, static_cast<f64>(total));
}

}  // namespace
}  // namespace orion
