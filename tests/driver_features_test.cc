// Driver-level integration tests: fault tolerance, repartitioning between
// loops, ordered-execution exactness, 3-D iteration spaces with mixed
// placement strategies, and edge cases.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/apps/sgd_mf.h"
#include "src/runtime/driver.h"

namespace orion {
namespace {

TEST(DriverFeatures, CheckpointRestoreResumesTraining) {
  RatingsConfig d;
  d.rows = 200;
  d.cols = 150;
  d.nnz = 6000;
  d.true_rank = 4;
  auto data = GenerateRatings(d);
  const std::string wpath = ::testing::TempDir() + "/orion_ft_w.ckpt";
  const std::string hpath = ::testing::TempDir() + "/orion_ft_h.ckpt";

  f64 loss_at_ckpt = 0.0;
  {
    DriverConfig cfg;
    cfg.num_workers = 3;
    Driver driver(cfg);
    SgdMfConfig mf;
    mf.rank = 4;
    SgdMfApp app(&driver, mf);
    ASSERT_TRUE(app.Init(data, d.rows, d.cols).ok());
    for (int p = 0; p < 4; ++p) {
      ASSERT_TRUE(app.RunPass().ok());
    }
    loss_at_ckpt = *app.EvalLoss();
    ASSERT_TRUE(driver.Checkpoint(app.w(), wpath).ok());
    ASSERT_TRUE(driver.Checkpoint(app.h(), hpath).ok());
    // Driver destroyed here: the "machine" goes down.
  }

  // A fresh driver restores the factors and continues; the restored loss
  // must match the checkpointed one, and training must keep improving.
  DriverConfig cfg;
  cfg.num_workers = 3;
  Driver driver(cfg);
  SgdMfConfig mf;
  mf.rank = 4;
  SgdMfApp app(&driver, mf);
  ASSERT_TRUE(app.Init(data, d.rows, d.cols).ok());
  ASSERT_TRUE(driver.Restore(app.w(), wpath).ok());
  ASSERT_TRUE(driver.Restore(app.h(), hpath).ok());
  EXPECT_NEAR(*app.EvalLoss(), loss_at_ckpt, 1e-6 * loss_at_ckpt + 1e-6);
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(app.RunPass().ok());
  }
  EXPECT_LT(*app.EvalLoss(), loss_at_ckpt);
  std::remove(wpath.c_str());
  std::remove(hpath.c_str());
}

TEST(DriverFeatures, AutomaticRepartitionBetweenIncompatibleLoops) {
  // Loop A partitions `v` by dim 0 (space); loop B wants it rotated; both
  // touch the same array. The driver must gather + rescatter transparently
  // and both loops must compute correctly, repeatedly.
  const i64 kN = 40;
  const i64 kM = 30;
  DriverConfig cfg;
  cfg.num_workers = 3;
  Driver driver(cfg);
  auto grid = driver.CreateDistArray("grid", {kN, kM}, 1, Density::kSparse);
  auto rowv = driver.CreateDistArray("rowv", {kN}, 1, Density::kDense);
  {
    CellStore& cells = driver.MutableCells(grid);
    for (i64 i = 0; i < kN; ++i) {
      for (i64 j = 0; j < kM; j += 3) {
        *cells.GetOrCreate(i * kM + j) = 1.0f;
      }
    }
  }

  // Loop A: 1D over rows, rowv aligned (range partition).
  LoopSpec spec_a;
  spec_a.iter_space = grid;
  spec_a.iter_extents = {kN, kM};
  spec_a.AddAccess(rowv, "rowv", {Expr::LoopIndex(0)}, true);
  LoopKernel ka = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 k[1] = {idx[0]};
    ctx.Mutate(rowv, k)[0] += value[0];
  };
  ParallelForOptions oa;
  oa.planner.force_space_dim = 0;
  auto loop_a = driver.Compile(spec_a, ka, oa);
  ASSERT_TRUE(loop_a.ok()) << loop_a.status();

  // Loop B: force space dim 1, so rowv must rotate (time-aligned).
  LoopSpec spec_b;
  spec_b.iter_space = grid;
  spec_b.iter_extents = {kN, kM};
  spec_b.AddAccess(rowv, "rowv", {Expr::LoopIndex(0)}, true);
  LoopKernel kb = ka;
  ParallelForOptions ob;
  ob.planner.force_space_dim = 1;
  ob.planner.force_time_dim = 0;
  ob.planner.prefer_2d = true;
  auto loop_b = driver.Compile(spec_b, kb, ob);
  ASSERT_TRUE(loop_b.ok()) << loop_b.status();
  ASSERT_EQ(driver.PlanOf(*loop_b).placements.at(rowv).scheme, PartitionScheme::kSpaceTime);

  // Alternate: each Execute must see the other loop's writes.
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(driver.Execute(*loop_a).ok());
    ASSERT_TRUE(driver.Execute(*loop_b).ok());
  }
  const CellStore& out = driver.Cells(rowv);
  const f32 per_pass = static_cast<f32>((kM + 2) / 3);
  for (i64 i = 0; i < kN; ++i) {
    EXPECT_FLOAT_EQ(out.Get(i)[0], 4.0f * per_pass) << "row " << i;
  }
}

TEST(DriverFeatures, OrderedExecutionMatchesLexicographicSerialExactly) {
  // Per-cell updates are order-sensitive (v = v * a + b): an ordered loop
  // must reproduce the lexicographic serial execution bit-for-bit.
  const i64 kN = 30;
  const i64 kM = 24;
  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);
  auto grid = driver.CreateDistArray("grid", {kN, kM}, 1, Density::kSparse);
  auto rows = driver.CreateDistArray("rows", {kN}, 1, Density::kDense);
  auto cols = driver.CreateDistArray("cols", {kM}, 1, Density::kDense);
  std::map<i64, f32> entries;
  {
    Rng rng(3);
    CellStore& cells = driver.MutableCells(grid);
    for (int n = 0; n < 400; ++n) {
      const i64 key = rng.NextIndex(kN) * kM + rng.NextIndex(kM);
      const f32 v = 0.5f + 0.25f * static_cast<f32>(rng.NextDouble());
      *cells.GetOrCreate(key) = v;
      entries[key] = v;
    }
  }

  LoopSpec spec;
  spec.iter_space = grid;
  spec.iter_extents = {kN, kM};
  spec.ordered = true;
  spec.AddAccess(rows, "rows", {Expr::LoopIndex(0)}, true);
  spec.AddAccess(cols, "cols", {Expr::LoopIndex(1)}, true);
  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 ki[1] = {idx[0]};
    const i64 kj[1] = {idx[1]};
    f32* r = ctx.Mutate(rows, ki);
    f32* c = ctx.Mutate(cols, kj);
    r[0] = r[0] * 0.9f + value[0];  // order-sensitive
    c[0] = c[0] * 1.1f + value[0];
  };
  ParallelForOptions options;
  options.ordered = true;
  auto loop = driver.Compile(spec, kernel, options);
  ASSERT_TRUE(loop.ok()) << loop.status();
  ASSERT_TRUE(driver.PlanOf(*loop).ordered);
  ASSERT_TRUE(driver.Execute(*loop).ok());

  std::vector<f32> want_rows(static_cast<size_t>(kN), 0.0f);
  std::vector<f32> want_cols(static_cast<size_t>(kM), 0.0f);
  for (const auto& [key, v] : entries) {  // std::map: lexicographic order
    const i64 i = key / kM;
    const i64 j = key % kM;
    want_rows[static_cast<size_t>(i)] = want_rows[static_cast<size_t>(i)] * 0.9f + v;
    want_cols[static_cast<size_t>(j)] = want_cols[static_cast<size_t>(j)] * 1.1f + v;
  }
  const CellStore& r = driver.Cells(rows);
  for (i64 i = 0; i < kN; ++i) {
    EXPECT_FLOAT_EQ(r.Get(i)[0], want_rows[static_cast<size_t>(i)]) << "row " << i;
  }
  const CellStore& c = driver.Cells(cols);
  for (i64 j = 0; j < kM; ++j) {
    EXPECT_FLOAT_EQ(c.Get(j)[0], want_cols[static_cast<size_t>(j)]) << "col " << j;
  }
}

TEST(DriverFeatures, ThreeDTensorWithMixedPlacements) {
  // CP-decomposition-shaped access: a 3-D sparse tensor, updates to A[i]
  // and B[j] in place, and the third factor C[k] through a buffer. The
  // planner must pick a 2D schedule over dims (0, 1) with C
  // replicated/server.
  const i64 kI = 20;
  const i64 kJ = 18;
  const i64 kK = 6;
  DriverConfig cfg;
  cfg.num_workers = 3;
  Driver driver(cfg);
  auto tensor = driver.CreateDistArray("tensor", {kI, kJ, kK}, 1, Density::kSparse);
  auto a = driver.CreateDistArray("A", {kI}, 1, Density::kDense);
  auto b = driver.CreateDistArray("B", {kJ}, 1, Density::kDense);
  auto c = driver.CreateDistArray("C", {kK}, 1, Density::kDense);
  driver.RegisterBuffer(c, 1, MakeAddApplyFn());
  {
    Rng rng(5);
    CellStore& cells = driver.MutableCells(tensor);
    for (int n = 0; n < 500; ++n) {
      const i64 key = (rng.NextIndex(kI) * kJ + rng.NextIndex(kJ)) * kK + rng.NextIndex(kK);
      *cells.GetOrCreate(key) = 1.0f;
    }
  }

  LoopSpec spec;
  spec.iter_space = tensor;
  spec.iter_extents = {kI, kJ, kK};
  spec.AddAccess(a, "A", {Expr::LoopIndex(0)}, true);
  spec.AddAccess(b, "B", {Expr::LoopIndex(1)}, true);
  spec.AddAccess(c, "C", {Expr::LoopIndex(2)}, false);
  spec.AddAccess(c, "C", {Expr::LoopIndex(2)}, true, /*buffered=*/true);
  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 ki[1] = {idx[0]};
    const i64 kj[1] = {idx[1]};
    const i64 kk[1] = {idx[2]};
    ctx.Mutate(a, ki)[0] += value[0];
    ctx.Mutate(b, kj)[0] += value[0];
    const f32 upd = value[0];
    ctx.BufferUpdate(c, kk, &upd);
  };
  auto loop = driver.Compile(spec, kernel, {});
  ASSERT_TRUE(loop.ok()) << loop.status();
  const auto& plan = driver.PlanOf(*loop);
  EXPECT_EQ(plan.form, ParallelForm::k2D);
  EXPECT_TRUE((plan.space_dim == 0 && plan.time_dim == 1) ||
              (plan.space_dim == 1 && plan.time_dim == 0))
      << plan.ToString();
  ASSERT_TRUE(driver.Execute(*loop).ok());

  // Totals must be conserved everywhere.
  f64 total = 0.0;
  driver.MutableCells(tensor).ForEach([&](i64, f32* v) { total += v[0]; });
  f64 a_sum = 0.0;
  driver.MutableCells(a).ForEach([&](i64, f32* v) { a_sum += v[0]; });
  f64 b_sum = 0.0;
  driver.MutableCells(b).ForEach([&](i64, f32* v) { b_sum += v[0]; });
  f64 c_sum = 0.0;
  driver.MutableCells(c).ForEach([&](i64, f32* v) { c_sum += v[0]; });
  EXPECT_DOUBLE_EQ(a_sum, total);
  EXPECT_DOUBLE_EQ(b_sum, total);
  EXPECT_DOUBLE_EQ(c_sum, total);
}

TEST(DriverFeatures, MoreWorkersThanRows) {
  DriverConfig cfg;
  cfg.num_workers = 8;  // only 3 rows of data
  Driver driver(cfg);
  auto data = driver.CreateDistArray("data", {3, 50}, 1, Density::kSparse);
  auto sums = driver.CreateDistArray("sums", {3}, 1, Density::kDense);
  {
    CellStore& cells = driver.MutableCells(data);
    for (i64 i = 0; i < 3; ++i) {
      for (i64 j = 0; j < 50; ++j) {
        *cells.GetOrCreate(i * 50 + j) = 1.0f;
      }
    }
  }
  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {3, 50};
  spec.AddAccess(sums, "sums", {Expr::LoopIndex(0)}, true);
  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 k[1] = {idx[0]};
    ctx.Mutate(sums, k)[0] += value[0];
  };
  auto loop = driver.Compile(spec, kernel, {});
  ASSERT_TRUE(loop.ok()) << loop.status();
  ASSERT_TRUE(driver.Execute(*loop).ok());
  for (i64 i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(driver.Cells(sums).Get(i)[0], 50.0f);
  }
}

TEST(DriverFeatures, EmptyIterationSpaceFailsCompile) {
  DriverConfig cfg;
  cfg.num_workers = 2;
  Driver driver(cfg);
  auto data = driver.CreateDistArray("data", {10, 10}, 1, Density::kSparse);
  auto out = driver.CreateDistArray("out", {10}, 1, Density::kDense);
  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {10, 10};
  spec.AddAccess(out, "out", {Expr::LoopIndex(0)}, true);
  LoopKernel kernel = [](LoopContext&, IdxSpan, const f32*) {};
  // Dependence-free loop: compiles fine even with no cells (histograms fall
  // back to equal-width splits).
  auto loop = driver.Compile(spec, kernel, {});
  ASSERT_TRUE(loop.ok()) << loop.status();
  EXPECT_TRUE(driver.Execute(*loop).ok());
}

TEST(DriverFeatures, MultipleAccumulators) {
  DriverConfig cfg;
  cfg.num_workers = 3;
  Driver driver(cfg);
  auto data = driver.CreateDistArray("data", {60}, 1, Density::kSparse);
  {
    CellStore& cells = driver.MutableCells(data);
    for (i64 i = 0; i < 60; ++i) {
      *cells.GetOrCreate(i) = static_cast<f32>(i);
    }
  }
  int acc_sum = driver.CreateAccumulator();
  int acc_max_count = driver.CreateAccumulator();
  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {60};
  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    ctx.AccumulatorAdd(acc_sum, value[0]);
    if (value[0] >= 30.0f) {
      ctx.AccumulatorAdd(acc_max_count, 1.0);
    }
  };
  auto loop = driver.Compile(spec, kernel, {});
  ASSERT_TRUE(loop.ok()) << loop.status();
  ASSERT_TRUE(driver.Execute(*loop).ok());
  EXPECT_DOUBLE_EQ(driver.AccumulatorValue(acc_sum), 59.0 * 60.0 / 2.0);
  EXPECT_DOUBLE_EQ(driver.AccumulatorValue(acc_max_count), 30.0);
  driver.ResetAccumulator(acc_sum);
  EXPECT_DOUBLE_EQ(driver.AccumulatorValue(acc_sum), 0.0);
  EXPECT_DOUBLE_EQ(driver.AccumulatorValue(acc_max_count), 30.0);
}

TEST(DriverFeatures, RandomizeDimPreservesCellsAndSmoothsSkew) {
  DriverConfig cfg;
  cfg.num_workers = 2;
  Driver driver(cfg);
  auto data = driver.CreateDistArray("data", {1000, 4}, 1, Density::kSparse);
  Rng rng(8);
  f64 total = 0.0;
  {
    CellStore& cells = driver.MutableCells(data);
    for (int n = 0; n < 3000; ++n) {
      const i64 i = rng.NextZipf(1000, 1.2);  // heavy head
      const i64 j = rng.NextIndex(4);
      f32* v = cells.GetOrCreate(i * 4 + j);
      if (v[0] == 0.0f) {
        v[0] = 1.0f;
        total += 1.0;
      }
    }
  }
  const i64 before_cells = driver.Cells(data).NumCells();
  driver.RandomizeDim(data, 0, /*seed=*/77);
  const CellStore& after = driver.Cells(data);
  EXPECT_EQ(after.NumCells(), before_cells);
  f64 after_total = 0.0;
  i64 head = 0;
  const KeySpace& ks = driver.Meta(data).key_space;
  after.ForEachConst([&](i64 key, const f32* v) {
    after_total += v[0];
    if (ks.Coord(key, 0) < 100) {
      ++head;
    }
  });
  EXPECT_DOUBLE_EQ(after_total, total);
  // Zipf(1.2) puts the majority of cells in the first 10% of rows; after
  // randomization roughly 10% should be there.
  EXPECT_LT(head, before_cells / 4);
}

}  // namespace
}  // namespace orion
