// Statement-level loop-body IR: subscript classification, access
// extraction, prefetch-slice synthesis (paper Sec. 4.4), interpretation,
// and an end-to-end CompileBody run whose synthesized prefetch must match
// the kernel's actual accesses.
#include <gtest/gtest.h>

#include <set>

#include "src/ir/analyze_body.h"
#include "src/runtime/driver.h"

namespace orion {
namespace {

// ---- Subscript classification over SExpr ----

TEST(StmtIr, ClassifyAffine) {
  auto s = ClassifySubscriptExpr(SExpr::Add(SExpr::IndexVar(1), SExpr::Const(3)));
  EXPECT_EQ(s.kind, SubscriptKind::kLoopIndex);
  EXPECT_EQ(s.loop_dim, 1);
  EXPECT_EQ(s.constant, 3);
}

TEST(StmtIr, ClassifyConstantFolding) {
  auto s = ClassifySubscriptExpr(SExpr::Mul(SExpr::Const(3), SExpr::Const(4)));
  EXPECT_EQ(s.kind, SubscriptKind::kConstant);
  EXPECT_EQ(s.constant, 12);
}

TEST(StmtIr, ClassifyVarIsRuntime) {
  auto s = ClassifySubscriptExpr(SExpr::Var(0));
  EXPECT_EQ(s.kind, SubscriptKind::kRuntime);
}

TEST(StmtIr, ClassifyIterValueIsRuntime) {
  auto s = ClassifySubscriptExpr(SExpr::IterValueAt(SExpr::Const(2)));
  EXPECT_EQ(s.kind, SubscriptKind::kRuntime);
}

TEST(StmtIr, ClassifyScaledIndexIsRange) {
  auto s = ClassifySubscriptExpr(SExpr::Mul(SExpr::Const(2), SExpr::IndexVar(0)));
  EXPECT_EQ(s.kind, SubscriptKind::kRange);
}

// ---- Access extraction ----

// The MF body: read W[i], H[j]; write W[i], H[j] (via accumulate stores).
LoopBody MfBody() {
  LoopBody body;
  body.num_index_dims = 2;
  body.num_vars = 1;
  // v0 = W[i][0] * H[j][0]; W[i][0] += v0; H[j][0] += v0
  auto w_read = SExpr::ArrayElem(1, {SExpr::IndexVar(0)}, SExpr::Const(0));
  auto h_read = SExpr::ArrayElem(2, {SExpr::IndexVar(1)}, SExpr::Const(0));
  body.stmts.push_back(Stmt::Assign(0, SExpr::Mul(w_read, h_read)));
  body.stmts.push_back(Stmt::Store(1, "W", {SExpr::IndexVar(0)}, SExpr::Const(0),
                                   SExpr::Var(0), /*accumulate=*/true));
  body.stmts.push_back(Stmt::Store(2, "H", {SExpr::IndexVar(1)}, SExpr::Const(0),
                                   SExpr::Var(0), /*accumulate=*/true));
  return body;
}

TEST(StmtIr, ExtractMfAccesses) {
  const auto accesses = ExtractAccesses(MfBody());
  // W read, H read, W write, W read (from +=, deduped with the first),
  // H write: 4 distinct entries.
  int w_reads = 0;
  int w_writes = 0;
  int h_reads = 0;
  int h_writes = 0;
  for (const auto& a : accesses) {
    ASSERT_EQ(a.subscripts.size(), 1u);
    EXPECT_EQ(a.subscripts[0].kind, SubscriptKind::kLoopIndex);
    if (a.array == 1) {
      (a.is_write ? w_writes : w_reads) += 1;
      EXPECT_EQ(a.subscripts[0].loop_dim, 0);
    } else {
      (a.is_write ? h_writes : h_reads) += 1;
      EXPECT_EQ(a.subscripts[0].loop_dim, 1);
    }
  }
  EXPECT_EQ(w_reads, 1);
  EXPECT_EQ(w_writes, 1);
  EXPECT_EQ(h_reads, 1);
  EXPECT_EQ(h_writes, 1);
}

TEST(StmtIr, ExtractBufferedUpdate) {
  LoopBody body;
  body.num_index_dims = 1;
  body.num_vars = 1;
  body.stmts.push_back(Stmt::Assign(0, SExpr::IterValueAt(SExpr::Const(0))));
  body.stmts.push_back(Stmt::BufferUpdate(3, "weights", {SExpr::Var(0)}, {SExpr::Const(1)}));
  const auto accesses = ExtractAccesses(body);
  ASSERT_EQ(accesses.size(), 1u);
  EXPECT_TRUE(accesses[0].is_write);
  EXPECT_TRUE(accesses[0].buffered);
  EXPECT_EQ(accesses[0].subscripts[0].kind, SubscriptKind::kRuntime);
}

// ---- Prefetch synthesis ----

// The SLR body shape: n = value[1]; for f in 0..n-1:
//   id = value[2 + 2f]; v = value[3 + 2f]; margin += weights[id][0] * v
LoopBody SlrBody(DistArrayId weights) {
  LoopBody body;
  body.num_index_dims = 1;
  body.num_vars = 5;  // 0=n, 1=f(counter), 2=id, 3=v, 4=margin
  auto two_f = SExpr::Mul(SExpr::Const(2), SExpr::Var(1));
  std::vector<StmtPtr> loop_body;
  loop_body.push_back(
      Stmt::Assign(2, SExpr::IterValueAt(SExpr::Add(SExpr::Const(2), two_f))));
  loop_body.push_back(
      Stmt::Assign(3, SExpr::IterValueAt(SExpr::Add(SExpr::Const(3), two_f))));
  loop_body.push_back(Stmt::Assign(
      4, SExpr::Add(SExpr::Var(4),
                    SExpr::Mul(SExpr::ArrayElem(weights, {SExpr::Var(2)}, SExpr::Const(0)),
                               SExpr::Var(3)))));
  body.stmts.push_back(Stmt::Assign(0, SExpr::IterValueAt(SExpr::Const(1))));
  body.stmts.push_back(Stmt::Assign(4, SExpr::Const(0)));
  body.stmts.push_back(Stmt::For(1, SExpr::Var(0), std::move(loop_body)));
  return body;
}

TEST(StmtIr, SlrSliceRecordsExactlyTheTouchedWeights) {
  const auto program = SynthesizePrefetch(SlrBody(7));
  ASSERT_TRUE(program.HasTargets());
  ASSERT_EQ(program.target_arrays().size(), 1u);
  EXPECT_EQ(program.target_arrays()[0], 7);
  EXPECT_TRUE(program.unprefetchable().empty());

  // Interpret over a sample: label, n=3, (id,val) = (5,.5)(11,.25)(2,1).
  const f32 value[8] = {1.0f, 3.0f, 5.0f, 0.5f, 11.0f, 0.25f, 2.0f, 1.0f};
  std::map<DistArrayId, KeySpace> spaces;
  spaces.emplace(7, KeySpace({100}));
  std::map<DistArrayId, std::vector<i64>> keys;
  const i64 idx[1] = {0};
  program.Run(idx, value, 8, spaces, &keys);
  EXPECT_EQ(keys[7], (std::vector<i64>{5, 11, 2}));
}

TEST(StmtIr, SliceDropsPureComputeStatements) {
  // margin accumulation (var 4) feeds no subscript: the sliced program must
  // not keep it. We detect this by checking the slice's node count: the
  // For survives with only the id assignment + record inside.
  const auto program = SynthesizePrefetch(SlrBody(7));
  // Top level: n assignment + For. (margin init sliced away.)
  ASSERT_EQ(program.nodes().size(), 2u);
  const auto& loop = program.nodes()[1];
  ASSERT_EQ(loop.kind, PrefetchProgram::Node::Kind::kFor);
  // Inside: id assignment + record (value assignment and margin update gone).
  EXPECT_EQ(loop.body.size(), 2u);
}

TEST(StmtIr, ArrayDependentSubscriptIsUnprefetchable) {
  // B[A[i]]: the outer read's subscript needs A's value -> cannot prefetch
  // B; A itself (subscript = i) is prefetchable.
  LoopBody body;
  body.num_index_dims = 1;
  body.num_vars = 1;
  body.stmts.push_back(
      Stmt::Assign(0, SExpr::ArrayElem(2, {SExpr::ArrayElem(1, {SExpr::IndexVar(0)},
                                                            SExpr::Const(0))},
                                       SExpr::Const(0))));
  const auto program = SynthesizePrefetch(body);
  ASSERT_EQ(program.target_arrays().size(), 1u);
  EXPECT_EQ(program.target_arrays()[0], 1);
  ASSERT_EQ(program.unprefetchable().size(), 1u);
  EXPECT_EQ(program.unprefetchable()[0], 2);
}

TEST(StmtIr, TaintedVariableBlocksPrefetch) {
  // v = A[i]; read B[v]: v is tainted by an array read.
  LoopBody body;
  body.num_index_dims = 1;
  body.num_vars = 2;
  body.stmts.push_back(
      Stmt::Assign(0, SExpr::ArrayElem(1, {SExpr::IndexVar(0)}, SExpr::Const(0))));
  body.stmts.push_back(
      Stmt::Assign(1, SExpr::ArrayElem(2, {SExpr::Var(0)}, SExpr::Const(0))));
  const auto program = SynthesizePrefetch(body);
  EXPECT_EQ(program.target_arrays(), std::vector<DistArrayId>{1});
  EXPECT_EQ(program.unprefetchable(), std::vector<DistArrayId>{2});
}

TEST(StmtIr, ConditionalReadsRespectControlFlow) {
  // if (value[0]) { read A[i] }: the record must stay under the If.
  LoopBody body;
  body.num_index_dims = 1;
  body.num_vars = 1;
  std::vector<StmtPtr> then_body;
  then_body.push_back(
      Stmt::Assign(0, SExpr::ArrayElem(1, {SExpr::IndexVar(0)}, SExpr::Const(0))));
  body.stmts.push_back(Stmt::If(SExpr::IterValueAt(SExpr::Const(0)), std::move(then_body)));
  const auto program = SynthesizePrefetch(body);
  ASSERT_TRUE(program.HasTargets());

  std::map<DistArrayId, KeySpace> spaces;
  spaces.emplace(1, KeySpace({10}));
  std::map<DistArrayId, std::vector<i64>> keys;
  const i64 idx[1] = {4};
  const f32 off[1] = {0.0f};
  program.Run(idx, off, 1, spaces, &keys);
  EXPECT_TRUE(keys[1].empty());
  const f32 on[1] = {1.0f};
  program.Run(idx, on, 1, spaces, &keys);
  EXPECT_EQ(keys[1], std::vector<i64>{4});
}

// ---- End-to-end: CompileBody drives a real loop ----

TEST(StmtIr, CompileBodyRunsSlrEndToEnd) {
  // Samples: [n, id0, id1] with n in {1, 2}; kernel adds 1 to each touched
  // weight through a buffer; the synthesized prefetch must pull exactly the
  // touched weights so reads observe server state.
  const i64 kSamples = 60;
  const i64 kFeatures = 40;
  DriverConfig cfg;
  cfg.num_workers = 3;
  Driver driver(cfg);
  auto samples = driver.CreateDistArray("samples", {kSamples}, 3, Density::kSparse);
  auto weights = driver.CreateDistArray("weights", {kFeatures}, 1, Density::kDense);
  driver.RegisterBuffer(weights, 1, MakeAddApplyFn());
  std::vector<f64> want(static_cast<size_t>(kFeatures), 0.0);
  {
    CellStore& cells = driver.MutableCells(samples);
    Rng rng(9);
    for (i64 s = 0; s < kSamples; ++s) {
      f32* cell = cells.GetOrCreate(s);
      const int n = 1 + static_cast<int>(rng.NextBounded(2));
      cell[0] = static_cast<f32>(n);
      for (int f = 0; f < n; ++f) {
        const i64 id = rng.NextIndex(kFeatures);
        cell[1 + f] = static_cast<f32>(id);
        want[static_cast<size_t>(id)] += 1.0;
      }
    }
  }

  // Body: for f in 0..n-1 { id = value[1+f]; read weights[id]; buffer += 1 }
  LoopBody body;
  body.num_index_dims = 1;
  body.num_vars = 4;  // 0=n, 1=f, 2=id, 3=w (the loaded weight)
  std::vector<StmtPtr> inner;
  inner.push_back(Stmt::Assign(2, SExpr::IterValueAt(SExpr::Add(SExpr::Const(1), SExpr::Var(1)))));
  inner.push_back(Stmt::Assign(3, SExpr::ArrayElem(weights, {SExpr::Var(2)}, SExpr::Const(0))));
  inner.push_back(Stmt::BufferUpdate(weights, "weights", {SExpr::Var(2)}, {SExpr::Const(1)}));
  body.stmts.push_back(Stmt::Assign(0, SExpr::IterValueAt(SExpr::Const(0))));
  body.stmts.push_back(Stmt::For(1, SExpr::Var(0), std::move(inner)));

  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const int n = static_cast<int>(value[0]);
    for (int f = 0; f < n; ++f) {
      const i64 id[1] = {static_cast<i64>(value[1 + f])};
      // The prefetched read must be present (zero-initialized weights).
      (void)ctx.Read(weights, id);
      const f32 one = 1.0f;
      ctx.BufferUpdate(weights, id, &one);
    }
  };

  ParallelForOptions options;
  options.planner.replicate_threshold_floats = 0;  // force server weights
  auto loop = driver.CompileBody(samples, {kSamples}, /*ordered=*/false, body, kernel, options);
  ASSERT_TRUE(loop.ok()) << loop.status();
  EXPECT_EQ(driver.PlanOf(*loop).form, ParallelForm::k1D);
  EXPECT_EQ(driver.PlanOf(*loop).placements.at(weights).scheme, PartitionScheme::kServer);
  ASSERT_TRUE(driver.Execute(*loop).ok());

  const CellStore& out = driver.Cells(weights);
  for (i64 f = 0; f < kFeatures; ++f) {
    EXPECT_FLOAT_EQ(out.Get(f)[0], static_cast<f32>(want[static_cast<size_t>(f)]))
        << "feature " << f;
  }
}

}  // namespace
}  // namespace orion
