// Dependence-vector computation (paper Alg. 2) and lexicographic-positivity
// canonicalization.
#include <gtest/gtest.h>

#include "src/analysis/dependence.h"

namespace orion {
namespace {

ArrayAccess Ref(DistArrayId array, std::vector<Subscript> subs, bool write,
                bool buffered = false) {
  ArrayAccess a;
  a.array = array;
  a.array_name = "A";
  a.subscripts = std::move(subs);
  a.is_write = write;
  a.buffered = buffered;
  return a;
}

// ---- DepVec canonicalization ----

TEST(DepVec, AllZeroIsDropped) {
  DepVec d(2);
  d[0] = DepEntry::Value(0);
  d[1] = DepEntry::Value(0);
  EXPECT_FALSE(d.CorrectLexPositive());
}

TEST(DepVec, NegativeLeadingFlips) {
  DepVec d(2);
  d[0] = DepEntry::Value(-2);
  d[1] = DepEntry::Value(3);
  ASSERT_TRUE(d.CorrectLexPositive());
  EXPECT_EQ(d[0], DepEntry::Value(2));
  EXPECT_EQ(d[1], DepEntry::Value(-3));
}

TEST(DepVec, LeadingAnyBecomesPosInf) {
  DepVec d(2);
  d[0] = DepEntry::Any();
  d[1] = DepEntry::Value(0);
  ASSERT_TRUE(d.CorrectLexPositive());
  EXPECT_EQ(d[0], DepEntry::PosInf());
}

TEST(DepVec, ZeroThenAny) {
  DepVec d(2);
  d[0] = DepEntry::Value(0);
  d[1] = DepEntry::Any();
  ASSERT_TRUE(d.CorrectLexPositive());
  EXPECT_EQ(d[0], DepEntry::Value(0));
  EXPECT_EQ(d[1], DepEntry::PosInf());
}

TEST(DepVec, NegInfLeadingFlips) {
  DepVec d(2);
  d[0] = DepEntry::NegInf();
  d[1] = DepEntry::Value(1);
  ASSERT_TRUE(d.CorrectLexPositive());
  EXPECT_EQ(d[0], DepEntry::PosInf());
  EXPECT_EQ(d[1], DepEntry::Value(-1));
}

TEST(DepVec, PositiveLeadingKept) {
  DepVec d(3);
  d[0] = DepEntry::Value(0);
  d[1] = DepEntry::Value(2);
  d[2] = DepEntry::NegInf();
  ASSERT_TRUE(d.CorrectLexPositive());
  EXPECT_EQ(d[1], DepEntry::Value(2));
  EXPECT_EQ(d[2], DepEntry::NegInf());
}

TEST(DepVec, ToString) {
  DepVec d(2);
  d[0] = DepEntry::Value(0);
  d[1] = DepEntry::PosInf();
  EXPECT_EQ(d.ToString(), "(0, +inf)");
}

// ---- Pairwise dependence tests (Alg. 2) ----

TEST(DependencePair, ReadReadSkipped) {
  auto a = Ref(0, {Subscript::MakeLoopIndex(0)}, false);
  auto b = Ref(0, {Subscript::MakeLoopIndex(0)}, false);
  DepVec d;
  EXPECT_FALSE(DependenceForPair(a, b, 2, /*unordered=*/true, &d));
}

TEST(DependencePair, WriteWriteSkippedWhenUnordered) {
  auto a = Ref(0, {Subscript::MakeLoopIndex(0, 1)}, true);
  auto b = Ref(0, {Subscript::MakeLoopIndex(0)}, true);
  DepVec d;
  EXPECT_FALSE(DependenceForPair(a, b, 2, /*unordered=*/true, &d));
  EXPECT_TRUE(DependenceForPair(a, b, 2, /*unordered=*/false, &d));
  EXPECT_EQ(d[0], DepEntry::Value(1));
}

TEST(DependencePair, BufferedWritesExempt) {
  auto r = Ref(0, {Subscript::MakeLoopIndex(0)}, false);
  auto w = Ref(0, {Subscript::MakeLoopIndex(0)}, true, /*buffered=*/true);
  DepVec d;
  EXPECT_FALSE(DependenceForPair(r, w, 2, true, &d));
}

TEST(DependencePair, MfShape) {
  // W[i] read vs W[i] write over a 2-D iteration space: raw (0, any),
  // canonicalized to the single representative (0, +inf).
  auto r = Ref(0, {Subscript::MakeLoopIndex(0)}, false);
  auto w = Ref(0, {Subscript::MakeLoopIndex(0)}, true);
  DepVec d;
  ASSERT_TRUE(DependenceForPair(r, w, 2, true, &d));
  EXPECT_EQ(d[0], DepEntry::Value(0));
  EXPECT_EQ(d[1], DepEntry::Any());
  const auto reps = CanonicalRepresentatives(d);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0][0], DepEntry::Value(0));
  EXPECT_EQ(reps[0][1], DepEntry::PosInf());
}

TEST(DependencePair, OffsetDistance) {
  // A[i+2] write vs A[i] read -> distance 2 at dim 0.
  auto w = Ref(0, {Subscript::MakeLoopIndex(0, 2)}, true);
  auto r = Ref(0, {Subscript::MakeLoopIndex(0, 0)}, false);
  DepVec d;
  ASSERT_TRUE(DependenceForPair(w, r, 1, true, &d));
  EXPECT_EQ(d[0], DepEntry::Value(2));
}

TEST(DependencePair, NegativeDistanceCanonicalized) {
  // A[i-1] write vs A[i] read -> raw distance -1 -> representative (1).
  auto w = Ref(0, {Subscript::MakeLoopIndex(0, -1)}, true);
  auto r = Ref(0, {Subscript::MakeLoopIndex(0, 0)}, false);
  DepVec d;
  ASSERT_TRUE(DependenceForPair(w, r, 1, true, &d));
  EXPECT_EQ(d[0], DepEntry::Value(-1));
  const auto reps = CanonicalRepresentatives(d);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0][0], DepEntry::Value(1));
}

TEST(DependencePair, ContradictoryDistancesProveIndependence) {
  // A[i, i+1] vs A[i, i]: dim0 demands distance 0, dim1 demands distance 1
  // on the same loop index -> never the same cell.
  auto w = Ref(0, {Subscript::MakeLoopIndex(0), Subscript::MakeLoopIndex(0, 1)}, true);
  auto r = Ref(0, {Subscript::MakeLoopIndex(0), Subscript::MakeLoopIndex(0)}, false);
  DepVec d;
  EXPECT_FALSE(DependenceForPair(w, r, 1, true, &d));
}

TEST(DependencePair, DifferentConstantsProveIndependence) {
  auto w = Ref(0, {Subscript::MakeConstant(3)}, true);
  auto r = Ref(0, {Subscript::MakeConstant(4)}, false);
  DepVec d;
  EXPECT_FALSE(DependenceForPair(w, r, 1, true, &d));
}

TEST(DependencePair, SameConstantConservative) {
  // Both touch cell 3: any pair of iterations conflicts -> raw (any),
  // representative (+inf).
  auto w = Ref(0, {Subscript::MakeConstant(3)}, true);
  auto r = Ref(0, {Subscript::MakeConstant(3)}, false);
  DepVec d;
  ASSERT_TRUE(DependenceForPair(w, r, 1, true, &d));
  EXPECT_EQ(d[0], DepEntry::Any());
  const auto reps = CanonicalRepresentatives(d);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0][0], DepEntry::PosInf());
}

TEST(DependencePair, RangeSubscriptConservative) {
  // A range subscript gives no refinement: raw (any, any); the complete
  // canonical set is {(+inf, any), (0, +inf)}.
  auto w = Ref(0, {Subscript::MakeRange()}, true);
  auto r = Ref(0, {Subscript::MakeLoopIndex(0)}, false);
  DepVec d;
  ASSERT_TRUE(DependenceForPair(w, r, 2, true, &d));
  EXPECT_EQ(d[0], DepEntry::Any());
  EXPECT_EQ(d[1], DepEntry::Any());
  const auto reps = CanonicalRepresentatives(d);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(reps[0][0], DepEntry::PosInf());
  EXPECT_EQ(reps[0][1], DepEntry::Any());
  EXPECT_EQ(reps[1][0], DepEntry::Value(0));
  EXPECT_EQ(reps[1][1], DepEntry::PosInf());
}

TEST(DependencePair, RuntimeSubscriptConservative) {
  auto w = Ref(0, {Subscript::MakeRuntime()}, true);
  auto r = Ref(0, {Subscript::MakeRuntime()}, false);
  DepVec d;
  ASSERT_TRUE(DependenceForPair(w, r, 1, true, &d));
  EXPECT_EQ(d[0], DepEntry::Any());
  const auto reps = CanonicalRepresentatives(d);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0][0], DepEntry::PosInf());
}

TEST(DependencePair, DifferentLoopIndicesNoRefinement) {
  // A[i] vs A[j]: the coordinate could match for any (i, j) pair: raw
  // (any, any).
  auto w = Ref(0, {Subscript::MakeLoopIndex(0)}, true);
  auto r = Ref(0, {Subscript::MakeLoopIndex(1)}, false);
  DepVec d;
  ASSERT_TRUE(DependenceForPair(w, r, 2, true, &d));
  EXPECT_EQ(d[0], DepEntry::Any());
  EXPECT_EQ(d[1], DepEntry::Any());
  EXPECT_EQ(CanonicalRepresentatives(d).size(), 2u);
}

TEST(DependencePair, SelfWritePairIsIntraIteration) {
  // The same write ref paired with itself in an ordered loop: distance 0
  // everywhere it constrains -> intra-iteration only -> dropped.
  auto w = Ref(0, {Subscript::MakeLoopIndex(0), Subscript::MakeLoopIndex(1)}, true);
  DepVec d;
  EXPECT_FALSE(DependenceForPair(w, w, 2, /*unordered=*/false, &d));
}

// ---- Whole-loop dependence sets ----

TEST(Dependence, MatrixFactorization) {
  LoopSpec spec;
  spec.iter_space = 9;
  spec.iter_extents = {100, 80};
  spec.AddClassifiedAccess(1, "W", {Subscript::MakeLoopIndex(0)}, false);
  spec.AddClassifiedAccess(1, "W", {Subscript::MakeLoopIndex(0)}, true);
  spec.AddClassifiedAccess(2, "H", {Subscript::MakeLoopIndex(1)}, false);
  spec.AddClassifiedAccess(2, "H", {Subscript::MakeLoopIndex(1)}, true);

  const auto deps = ComputeDependenceVectors(spec);
  ASSERT_EQ(deps.size(), 2u);  // (0, +inf) and (+inf, 0), deduplicated
  bool has_row = false;
  bool has_col = false;
  for (const auto& d : deps) {
    if (d[0].IsZero() && d[1] == DepEntry::PosInf()) {
      has_row = true;
    }
    if (d[0] == DepEntry::PosInf() && d[1].IsZero()) {
      has_col = true;
    }
  }
  EXPECT_TRUE(has_row);
  EXPECT_TRUE(has_col);
}

TEST(Dependence, AllBufferedMeansNoDeps) {
  LoopSpec spec;
  spec.iter_space = 9;
  spec.iter_extents = {100};
  spec.AddClassifiedAccess(1, "w", {Subscript::MakeRuntime()}, false);
  spec.AddClassifiedAccess(1, "w", {Subscript::MakeRuntime()}, true, /*buffered=*/true);
  EXPECT_TRUE(ComputeDependenceVectors(spec).empty());
}

TEST(Dependence, DuplicateVectorsDeduplicated) {
  LoopSpec spec;
  spec.iter_space = 9;
  spec.iter_extents = {100, 80};
  // Two distinct read refs against the same write produce the same vector.
  spec.AddClassifiedAccess(1, "A", {Subscript::MakeLoopIndex(0)}, false);
  spec.AddClassifiedAccess(1, "A", {Subscript::MakeLoopIndex(0)}, false);
  spec.AddClassifiedAccess(1, "A", {Subscript::MakeLoopIndex(0)}, true);
  EXPECT_EQ(ComputeDependenceVectors(spec).size(), 1u);
}

TEST(Dependence, LeadingAnyWithTrailingDistanceKeepsBothDirections) {
  // The soundness case behind CanonicalRepresentatives: A[j] write vs
  // A[j+1] read over a 2-D space has raw vector (any, -1); both directions
  // of the unconstrained dim must survive, plus the zero-leading case —
  // otherwise the planner could "prove" a skewed wavefront legal when
  // concurrent blocks would in fact conflict.
  LoopSpec spec;
  spec.iter_space = 9;
  spec.iter_extents = {100, 100};
  spec.AddClassifiedAccess(1, "A", {Subscript::MakeLoopIndex(1, 0)}, true);
  spec.AddClassifiedAccess(1, "A", {Subscript::MakeLoopIndex(1, 1)}, false);
  const auto deps = ComputeDependenceVectors(spec);
  // {(+inf, -1), (+inf, 1), (0, 1)}.
  ASSERT_EQ(deps.size(), 3u);
  bool pos_neg = false;
  bool pos_pos = false;
  bool zero_pos = false;
  for (const auto& d : deps) {
    pos_neg |= d[0] == DepEntry::PosInf() && d[1] == DepEntry::Value(-1);
    pos_pos |= d[0] == DepEntry::PosInf() && d[1] == DepEntry::Value(1);
    zero_pos |= d[0] == DepEntry::Value(0) && d[1] == DepEntry::Value(1);
  }
  EXPECT_TRUE(pos_neg);
  EXPECT_TRUE(pos_pos);
  EXPECT_TRUE(zero_pos);
}

TEST(Dependence, StencilShape) {
  // write A[i][j]; read A[i-1][j], A[i][j-1] -> deps (1,0) and (0,1).
  LoopSpec spec;
  spec.iter_space = 9;
  spec.iter_extents = {50, 50};
  spec.AddClassifiedAccess(1, "A",
                           {Subscript::MakeLoopIndex(0), Subscript::MakeLoopIndex(1)}, true);
  spec.AddClassifiedAccess(
      1, "A", {Subscript::MakeLoopIndex(0, -1), Subscript::MakeLoopIndex(1)}, false);
  spec.AddClassifiedAccess(
      1, "A", {Subscript::MakeLoopIndex(0), Subscript::MakeLoopIndex(1, -1)}, false);
  const auto deps = ComputeDependenceVectors(spec);
  ASSERT_EQ(deps.size(), 2u);
  for (const auto& d : deps) {
    const bool is10 = d[0] == DepEntry::Value(1) && d[1].IsZero();
    const bool is01 = d[0].IsZero() && d[1] == DepEntry::Value(1);
    EXPECT_TRUE(is10 || is01) << d.ToString();
  }
}

}  // namespace
}  // namespace orion
