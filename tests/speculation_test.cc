// Speculative parameter prefetch for ordered (wavefront / lockstep)
// schedules: while step t computes, step t+1's server reads are fetched
// against the master's current state, then validated at the barrier against
// the dirty-range summaries of the kOverwrite writes the intervening steps
// flushed, re-fetching only conflicting keys. Everything here checks the
// acceptance bar: bit-for-bit identity with the synchronous fetch — across
// shard counts, under forced conflicts, and under message-fault chaos — and
// the controller's sticky fallback to synchronous under high conflict.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <tuple>
#include <vector>

#include "src/runtime/driver.h"

namespace orion {
namespace {

// Bitwise snapshot of a DistArray's master cells (gathers first).
std::map<i64, std::vector<f32>> Snapshot(Driver* d, DistArrayId id) {
  std::map<i64, std::vector<f32>> out;
  const CellStore& c = d->Cells(id);
  c.ForEachConst([&](i64 key, const f32* v) {
    out[key].assign(v, v + c.value_dim());
  });
  return out;
}

::testing::AssertionResult BitIdentical(const std::map<i64, std::vector<f32>>& a,
                                        const std::map<i64, std::vector<f32>>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "cell counts differ: " << a.size() << " vs " << b.size();
  }
  for (const auto& [key, va] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      return ::testing::AssertionFailure() << "key " << key << " missing";
    }
    if (va.size() != it->second.size() ||
        std::memcmp(va.data(), it->second.data(), va.size() * sizeof(f32)) != 0) {
      return ::testing::AssertionFailure() << "key " << key << " differs bitwise";
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Ordered wavefront over a dense 2-D space with a read-only server-hosted
// table: the zero-conflict case. Speculation should engage from pass 2 on
// (the kCached key lists warm during pass 1) and never need a repair.

struct TableResult {
  std::map<i64, std::vector<f32>> out_r;
  std::map<i64, std::vector<f32>> out_c;
  LoopMetrics last;
  u64 spec_requests_served = 0;
};

TableResult RunWavefrontTable(bool speculate, int shards, int passes,
                              FaultPlan fault_plan = {},
                              bool versioned_store = true) {
  constexpr i64 kRows = 8;
  constexpr i64 kCols = 8;

  DriverConfig cfg;
  cfg.num_workers = 4;
  cfg.seed = 21;
  cfg.param_server_shards = shards;
  cfg.fault_plan = fault_plan;
  cfg.versioned_store = versioned_store;
  auto driver = std::make_unique<Driver>(cfg);
  auto data = driver->CreateDistArray("data", {kRows, kCols}, 1, Density::kSparse);
  auto out_r = driver->CreateDistArray("out_r", {kRows}, 1, Density::kDense);
  auto out_c = driver->CreateDistArray("out_c", {kCols}, 1, Density::kDense);
  auto table = driver->CreateDistArray("table", {kRows + kCols - 1}, 1, Density::kDense);
  {
    CellStore& cells = driver->MutableCells(data);
    for (i64 i = 0; i < kRows; ++i) {
      for (i64 j = 0; j < kCols; ++j) {
        *cells.GetOrCreate(i * kCols + j) = 1.0f;
      }
    }
    driver->MapCells(table, [](i64 key, f32* v) { v[0] = static_cast<f32>(key + 1); });
  }

  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {kRows, kCols};
  spec.ordered = true;  // request serializable (wavefront) execution
  spec.AddAccess(out_r, "out_r", {Expr::LoopIndex(0)}, true);
  spec.AddAccess(out_c, "out_c", {Expr::LoopIndex(1)}, true);
  // Data-skewed subscript i + j with replication priced out: served from the
  // master, so ordered execution prefetches it every step.
  spec.AddAccess(table, "table", {Expr::Add(Expr::LoopIndex(0), Expr::LoopIndex(1))},
                 false);

  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 k[1] = {idx[0] + idx[1]};
    const f32 t = ctx.Read(table, k)[0];
    const i64 ki[1] = {idx[0]};
    const i64 kj[1] = {idx[1]};
    ctx.Mutate(out_r, ki)[0] += value[0] * t;
    ctx.Mutate(out_c, kj)[0] += value[0] * t;
  };

  ParallelForOptions options;
  options.prefetch = PrefetchMode::kCached;
  options.speculate = speculate;
  options.planner.replicate_threshold_floats = 0;
  auto loop = driver->Compile(spec, kernel, options);
  EXPECT_TRUE(loop.ok()) << loop.status();
  EXPECT_EQ(driver->PlanOf(*loop).placements.at(table).scheme, PartitionScheme::kServer);
  EXPECT_TRUE(driver->PlanOf(*loop).ordered);

  TableResult res;
  for (int p = 0; p < passes; ++p) {
    EXPECT_TRUE(driver->Execute(*loop).ok());
    res.spec_requests_served += driver->last_metrics().spec_requests_served;
  }
  res.last = driver->last_metrics();
  res.out_r = Snapshot(driver.get(), out_r);
  res.out_c = Snapshot(driver.get(), out_c);
  return res;
}

TEST(Speculation, WavefrontBitForBitAcrossShardCounts) {
  const TableResult sync1 = RunWavefrontTable(/*speculate=*/false, /*shards=*/1, 3);
  for (int shards : {1, 4}) {
    const TableResult off = RunWavefrontTable(false, shards, 3);
    const TableResult on = RunWavefrontTable(true, shards, 3);
    EXPECT_TRUE(BitIdentical(sync1.out_r, off.out_r)) << "shards=" << shards;
    EXPECT_TRUE(BitIdentical(sync1.out_c, off.out_c)) << "shards=" << shards;
    EXPECT_TRUE(BitIdentical(sync1.out_r, on.out_r)) << "shards=" << shards;
    EXPECT_TRUE(BitIdentical(sync1.out_c, on.out_c)) << "shards=" << shards;
    // Speculation really ran (kCached keys warm after pass 1) and — the
    // table being read-only — never hit a conflict.
    EXPECT_GT(on.last.spec_issued, 0u) << "shards=" << shards;
    EXPECT_EQ(on.last.spec_conflicts, 0u) << "shards=" << shards;
    EXPECT_GT(on.spec_requests_served, 0u) << "shards=" << shards;
    EXPECT_EQ(off.last.spec_issued, 0u) << "shards=" << shards;
    EXPECT_EQ(off.last.spec_depth_effective, 0) << "shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// Non-versioned async serving (versioned_store=false with a ParamServer)
// hands gathers to pool threads that read *live* master state: a speculative
// gather still queued when step t's release goes out can observe step t+1's
// kOverwrite flushes, outside the [issued_during, step) repair window.
// Eligibility must therefore refuse speculation in this mode and revert to
// plain synchronous fetches — same results, zero speculative activity.

TEST(Speculation, IneligibleUnderNonVersionedAsyncServing) {
  const TableResult sync = RunWavefrontTable(/*speculate=*/false, /*shards=*/4, 3);
  const TableResult got = RunWavefrontTable(/*speculate=*/true, /*shards=*/4, 3,
                                            /*fault_plan=*/{},
                                            /*versioned_store=*/false);
  EXPECT_TRUE(BitIdentical(sync.out_r, got.out_r));
  EXPECT_TRUE(BitIdentical(sync.out_c, got.out_c));
  // The gate held: no speculative slot was issued, shipped, or served.
  EXPECT_EQ(got.last.spec_depth_effective, 0);
  EXPECT_EQ(got.last.spec_issued, 0u);
  EXPECT_EQ(got.spec_requests_served, 0u);
}

// ---------------------------------------------------------------------------
// Forced conflicts: the skewed-wavefront recurrence C[i][j] = C[i-1][j] +
// C[i][j-1] + B[i][j] + C_old[i][j] writes the server-hosted C every step,
// and step t+1 reads exactly the frontier step t overwrote. The C_old term
// makes each pass's values strictly larger than the last, so a stale
// speculative payload (frontier values from the previous pass) is
// *observably* wrong — a single missed repair breaks the bitwise comparison
// against the synchronous run.

struct RecurrenceResult {
  std::map<i64, std::vector<f32>> c_pass2;
  std::map<i64, std::vector<f32>> c_final;
  LoopMetrics pass2;
  int depth_pass3 = 0;
  double enabled_pass3 = -1.0;
  double conflict_rate_pass2 = -1.0;
};

RecurrenceResult RunRecurrence(bool speculate) {
  const i64 n = 14;
  const i64 m = 11;

  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);
  auto grid = driver.CreateDistArray("grid", {n, m}, 1, Density::kSparse);
  auto b = driver.CreateDistArray("B", {n, m}, 1, Density::kDense);
  auto c = driver.CreateDistArray("C", {n, m}, 1, Density::kDense);
  {
    CellStore& cells = driver.MutableCells(grid);
    for (i64 i = 0; i < n; ++i) {
      for (i64 j = 0; j < m; ++j) {
        *cells.GetOrCreate(i * m + j) = 1.0f;
      }
    }
    Rng rng(31);
    driver.MapCells(b, [&](i64, f32* v) { v[0] = static_cast<f32>(1 + rng.NextBounded(5)); });
  }

  LoopSpec spec;
  spec.iter_space = grid;
  spec.iter_extents = {n, m};
  spec.AddAccess(c, "C", {Expr::LoopIndex(0), Expr::LoopIndex(1)}, /*is_write=*/true);
  spec.AddAccess(c, "C", {Expr::LoopIndex(0), Expr::LoopIndex(1)}, /*is_write=*/false);
  spec.AddAccess(c, "C", {Expr::Sub(Expr::LoopIndex(0), Expr::Const(1)), Expr::LoopIndex(1)},
                 /*is_write=*/false);
  spec.AddAccess(c, "C", {Expr::LoopIndex(0), Expr::Sub(Expr::LoopIndex(1), Expr::Const(1))},
                 /*is_write=*/false);
  spec.AddAccess(b, "B", {Expr::LoopIndex(0), Expr::LoopIndex(1)}, /*is_write=*/false);

  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 i = idx[0];
    const i64 j = idx[1];
    f32 up = 0.0f;
    f32 left = 0.0f;
    if (i > 0) {
      const i64 ku[2] = {i - 1, j};
      up = ctx.Read(c, ku)[0];
    }
    if (j > 0) {
      const i64 kl[2] = {i, j - 1};
      left = ctx.Read(c, kl)[0];
    }
    const i64 kb[2] = {i, j};
    const f32 add = ctx.Read(b, kb)[0];
    const f32 old = ctx.Read(c, kb)[0];  // previous pass's value
    f32* out = ctx.Mutate(c, kb);
    out[0] = up + left + add + old;
  };

  ParallelForOptions options;
  options.prefetch = PrefetchMode::kCached;
  options.speculate = speculate;
  auto loop = driver.Compile(spec, kernel, options);
  EXPECT_TRUE(loop.ok()) << loop.status();
  EXPECT_EQ(driver.PlanOf(*loop).form, ParallelForm::k2DUnimodular);

  RecurrenceResult res;
  EXPECT_TRUE(driver.Execute(*loop).ok());  // pass 1: records + caches keys
  EXPECT_TRUE(driver.Execute(*loop).ok());  // pass 2: speculates into conflicts
  res.pass2 = driver.last_metrics();
  res.conflict_rate_pass2 = driver.ExportMetrics().Gauge("spec.conflict_rate");
  res.c_pass2 = Snapshot(&driver, c);
  EXPECT_TRUE(driver.Execute(*loop).ok());  // pass 3: controller has reacted
  res.depth_pass3 = driver.last_metrics().spec_depth_effective;
  res.enabled_pass3 = driver.ExportMetrics().Gauge("spec.enabled");
  res.c_final = Snapshot(&driver, c);
  return res;
}

TEST(Speculation, SabotageRepairsEveryOverwrittenRange) {
  const RecurrenceResult off = RunRecurrence(false);
  const RecurrenceResult on = RunRecurrence(true);

  // The speculating run really speculated and really conflicted…
  EXPECT_GT(on.pass2.spec_issued, 0u);
  EXPECT_GT(on.pass2.spec_conflicts, 0u);
  EXPECT_GT(on.pass2.spec_repair_bytes, 0u);
  EXPECT_EQ(off.pass2.spec_issued, 0u);

  // …and every overwritten range was caught: bitwise identity against the
  // synchronous run at the pass where every frontier value changed.
  EXPECT_TRUE(BitIdentical(off.c_pass2, on.c_pass2));
  EXPECT_TRUE(BitIdentical(off.c_final, on.c_final));

  // The serial recurrence (3 accumulating passes), for good measure — same
  // per-cell expression order, so the result is bit-exact even past the
  // f32 integer range.
  std::map<i64, std::vector<f32>> want;
  {
    const i64 n = 14;
    const i64 m = 11;
    Rng rng(31);  // same stream as RunRecurrence
    std::vector<f32> bvals(static_cast<size_t>(n * m));
    for (auto& v : bvals) {
      v = static_cast<f32>(1 + rng.NextBounded(5));
    }
    std::vector<f32> cvals(static_cast<size_t>(n * m), 0.0f);
    for (int pass = 0; pass < 3; ++pass) {
      for (i64 i = 0; i < n; ++i) {
        for (i64 j = 0; j < m; ++j) {
          const f32 up = i > 0 ? cvals[static_cast<size_t>((i - 1) * m + j)] : 0.0f;
          const f32 left = j > 0 ? cvals[static_cast<size_t>(i * m + j - 1)] : 0.0f;
          f32& cell = cvals[static_cast<size_t>(i * m + j)];
          cell = up + left + bvals[static_cast<size_t>(i * m + j)] + cell;
        }
      }
    }
    for (i64 k = 0; k < n * m; ++k) {
      want[k] = {cvals[static_cast<size_t>(k)]};
    }
  }
  EXPECT_TRUE(BitIdentical(want, on.c_final));
}

TEST(Speculation, ControllerDisablesUnderHighConflict) {
  const RecurrenceResult on = RunRecurrence(true);
  // Pass 2 conflicted on (essentially) every slot: the recurrence's step
  // t+1 reads are exactly step t's writes.
  EXPECT_GT(on.conflict_rate_pass2, 0.5);
  // The controller's disable is sticky: pass 3 reverted to synchronous.
  EXPECT_EQ(on.depth_pass3, 0);
  EXPECT_EQ(on.enabled_pass3, 0.0);
}

// ---------------------------------------------------------------------------
// Chaos: message-level drop / duplicate / delay faults with speculation
// active. Supervision resends arrivals and releases; the dirty summaries ride
// the (re)releases, so validation still sees every intervening flush and the
// result stays bitwise equal to the fault-free synchronous run.

TEST(Speculation, ChaosDropDupDelayStaysBitForBit) {
  const TableResult ref = RunWavefrontTable(/*speculate=*/false, /*shards=*/4, 3);

  FaultPlan chaos;
  chaos.seed = 13;
  chaos.drop_prob = 0.05;
  chaos.dup_prob = 0.05;
  chaos.delay_prob = 0.05;
  const TableResult got = RunWavefrontTable(/*speculate=*/true, /*shards=*/4, 3, chaos);

  EXPECT_TRUE(BitIdentical(ref.out_r, got.out_r));
  EXPECT_TRUE(BitIdentical(ref.out_c, got.out_c));
  EXPECT_GT(got.last.spec_issued, 0u);  // speculation stayed engaged under faults
}

}  // namespace
}  // namespace orion
