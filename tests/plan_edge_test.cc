// Planner edge cases: offset subscripts and alignment, worker-count cost
// sensitivity, replication thresholds.
#include <gtest/gtest.h>

#include "src/analysis/plan.h"

namespace orion {
namespace {

TEST(PlanEdge, OffsetSubscriptBreaksAlignment) {
  // A[j + 1] read alongside A[j] write: distances differ by 1 so the array
  // cannot be cleanly range/rotation-partitioned at split boundaries; the
  // unbuffered write then rules the candidate out entirely.
  LoopSpec spec;
  spec.iter_space = 0;
  spec.iter_extents = {100, 100};
  spec.AddClassifiedAccess(1, "A", {Subscript::MakeLoopIndex(1, 1)}, false);
  spec.AddClassifiedAccess(1, "A", {Subscript::MakeLoopIndex(1, 0)}, true);
  PlannerOptions options;
  options.num_workers = 4;
  const auto plan = PlanLoop(spec, {{1, ArrayStats{100, 1}}}, options);
  // dep: A[j] write vs A[j+1] read -> (0 at dim0? no: dim1 distance 1) ->
  // vector (+inf could appear at dim0). Either way, no legal dependence-
  // preserving placement exists for the write.
  EXPECT_EQ(plan.form, ParallelForm::kSerial) << plan.ToString();
}

TEST(PlanEdge, OffsetReadOnlyArrayStillPlaceable) {
  // Same offset read but the array is never written: read-only servers /
  // replicas are fine, so the loop parallelizes.
  LoopSpec spec;
  spec.iter_space = 0;
  spec.iter_extents = {100, 100};
  spec.AddClassifiedAccess(1, "A", {Subscript::MakeLoopIndex(1, 1)}, false);
  spec.AddClassifiedAccess(2, "B", {Subscript::MakeLoopIndex(0)}, true);
  PlannerOptions options;
  options.num_workers = 4;
  const auto plan =
      PlanLoop(spec, {{1, ArrayStats{100, 1}}, {2, ArrayStats{100, 1}}}, options);
  EXPECT_EQ(plan.form, ParallelForm::k1D);
  EXPECT_EQ(plan.placements.at(1).scheme, PartitionScheme::kReplicated);
  EXPECT_EQ(plan.placements.at(2).scheme, PartitionScheme::kRange);
}

TEST(PlanEdge, WorkerCountShiftsReplicationDecision) {
  // A read-only array slightly over nothing: replication costs |A| once;
  // rotation costs N*|A|. Replication wins regardless of N, but the server
  // option's cost (2*N*|A|) grows with N — check est_comm scales.
  LoopSpec spec;
  spec.iter_space = 0;
  spec.iter_extents = {1000, 600};
  spec.AddClassifiedAccess(1, "W", {Subscript::MakeLoopIndex(0)}, true);
  spec.AddClassifiedAccess(2, "H", {Subscript::MakeLoopIndex(1)}, false);
  std::map<DistArrayId, ArrayStats> stats = {{1, ArrayStats{1000, 4}},
                                             {2, ArrayStats{600, 4}}};
  PlannerOptions few;
  few.num_workers = 2;
  few.replicate_threshold_floats = 0;  // force server for H
  PlannerOptions many = few;
  many.num_workers = 16;
  const auto plan_few = PlanLoop(spec, stats, few);
  const auto plan_many = PlanLoop(spec, stats, many);
  EXPECT_LT(plan_few.est_comm_floats, plan_many.est_comm_floats);
}

TEST(PlanEdge, ThresholdControlsReplication) {
  LoopSpec spec;
  spec.iter_space = 0;
  spec.iter_extents = {1000};
  spec.AddClassifiedAccess(1, "t", {Subscript::MakeConstant(0)}, false);
  spec.AddClassifiedAccess(2, "out", {Subscript::MakeLoopIndex(0)}, true);
  std::map<DistArrayId, ArrayStats> stats = {{1, ArrayStats{1, 64}},
                                             {2, ArrayStats{1000, 1}}};
  PlannerOptions yes;
  yes.num_workers = 4;
  yes.replicate_threshold_floats = 64;
  PlannerOptions no = yes;
  no.replicate_threshold_floats = 63;
  EXPECT_EQ(PlanLoop(spec, stats, yes).placements.at(1).scheme, PartitionScheme::kReplicated);
  EXPECT_EQ(PlanLoop(spec, stats, no).placements.at(1).scheme, PartitionScheme::kServer);
}

TEST(PlanEdge, ConstantSubscriptWriteUnbufferedIsSerial) {
  // Every iteration writes cell 0 without a buffer: a genuine serialization
  // point (the paper's accumulator/totals cases must buffer).
  LoopSpec spec;
  spec.iter_space = 0;
  spec.iter_extents = {1000};
  spec.AddClassifiedAccess(1, "t", {Subscript::MakeConstant(0)}, false);
  spec.AddClassifiedAccess(1, "t", {Subscript::MakeConstant(0)}, true);
  PlannerOptions options;
  options.num_workers = 4;
  const auto plan = PlanLoop(spec, {{1, ArrayStats{1, 4}}}, options);
  EXPECT_EQ(plan.form, ParallelForm::kSerial);
}

}  // namespace
}  // namespace orion
