// SLR: 1D data parallelism with server-hosted weights; all three prefetch
// modes must produce the same math (paper Sec. 6.3).
#include <gtest/gtest.h>

#include "src/apps/slr.h"

namespace orion {
namespace {

SparseLrConfig SmallData() {
  SparseLrConfig d;
  d.num_samples = 2000;
  d.num_features = 3000;
  d.nnz_per_sample = 12;
  d.seed = 21;
  return d;
}

TEST(Slr, PlannerPicks1DWithServerWeights) {
  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);
  SlrApp app(&driver, SlrConfig{});
  auto data = GenerateSparseLr(SmallData());
  ASSERT_TRUE(app.Init(data, 3000).ok());
  EXPECT_EQ(app.train_plan().form, ParallelForm::k1D);
  EXPECT_EQ(app.train_plan().placements.at(app.weights()).scheme, PartitionScheme::kServer);
}

TEST(Slr, LossDecreasesAndTracksSerial) {
  auto data = GenerateSparseLr(SmallData());

  SerialSlr serial(data, 3000, SlrConfig{});
  f64 serial_first = 0.0;
  f64 serial_last = 0.0;
  for (int p = 0; p < 6; ++p) {
    const f64 loss = serial.RunPass();
    if (p == 0) {
      serial_first = loss;
    }
    serial_last = loss;
  }
  EXPECT_LT(serial_last, serial_first);

  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);
  SlrApp app(&driver, SlrConfig{});
  ASSERT_TRUE(app.Init(data, 3000).ok());
  f64 orion_first = 0.0;
  f64 orion_last = 0.0;
  for (int p = 0; p < 6; ++p) {
    ASSERT_TRUE(app.RunPass().ok());
    if (p == 0) {
      orion_first = app.LastPassLogLoss();
    }
    orion_last = app.LastPassLogLoss();
  }
  // Data parallelism: the first sync round of the first pass predicts with
  // w = 0 everywhere, so the first-pass loss sits near log(2) (serial SGD,
  // updating in place, already beats that within the pass).
  EXPECT_GT(orion_first, serial_first);
  EXPECT_LT(orion_last, orion_first);
  // Data parallelism converges somewhat slower than serial, but must be in
  // the same regime.
  EXPECT_LT(orion_last, serial_first * 0.999);
}

TEST(Slr, PrefetchModesAgreeExactlySingleWorker) {
  // With one worker, sync rounds are sequential and deterministic: the three
  // prefetch modes must produce bit-identical training trajectories.
  auto data = GenerateSparseLr(SmallData());
  std::vector<f64> final_losses;
  for (PrefetchMode mode :
       {PrefetchMode::kBulk, PrefetchMode::kCached, PrefetchMode::kPerKey}) {
    DriverConfig cfg;
    cfg.num_workers = 1;
    Driver driver(cfg);
    SlrConfig slr;
    slr.loop_options.prefetch = mode;
    SlrApp app(&driver, slr);
    ASSERT_TRUE(app.Init(data, 3000).ok());
    for (int p = 0; p < 3; ++p) {
      ASSERT_TRUE(app.RunPass().ok());
    }
    final_losses.push_back(app.LastPassLogLoss());
  }
  EXPECT_DOUBLE_EQ(final_losses[0], final_losses[1]);
  EXPECT_DOUBLE_EQ(final_losses[0], final_losses[2]);
}

TEST(Slr, PrefetchModesAgreeStatisticallyMultiWorker) {
  // With several workers, flush arrival order at the server is racy (as in
  // any data-parallel system); trajectories agree only statistically.
  auto data = GenerateSparseLr(SmallData());
  std::vector<f64> final_losses;
  for (PrefetchMode mode :
       {PrefetchMode::kBulk, PrefetchMode::kCached, PrefetchMode::kPerKey}) {
    DriverConfig cfg;
    cfg.num_workers = 2;
    Driver driver(cfg);
    SlrConfig slr;
    slr.loop_options.prefetch = mode;
    SlrApp app(&driver, slr);
    ASSERT_TRUE(app.Init(data, 3000).ok());
    for (int p = 0; p < 3; ++p) {
      ASSERT_TRUE(app.RunPass().ok());
    }
    final_losses.push_back(app.LastPassLogLoss());
  }
  EXPECT_NEAR(final_losses[0], final_losses[1], 0.01);
  EXPECT_NEAR(final_losses[0], final_losses[2], 0.01);
}

TEST(Slr, BodyIrPathMatchesDeclaredPath) {
  // Compiling from the statement-level AST (access extraction + synthesized
  // prefetch) must train identically to the declaration-based path.
  auto data = GenerateSparseLr(SmallData());
  auto run = [&](bool use_body_ir) {
    DriverConfig cfg;
    cfg.num_workers = 1;  // deterministic trajectories
    Driver driver(cfg);
    SlrConfig slr;
    slr.use_body_ir = use_body_ir;
    SlrApp app(&driver, slr);
    EXPECT_TRUE(app.Init(data, 3000).ok());
    EXPECT_EQ(app.train_plan().form, ParallelForm::k1D);
    f64 last = 0.0;
    for (int p = 0; p < 4; ++p) {
      EXPECT_TRUE(app.RunPass().ok());
      last = app.LastPassLogLoss();
    }
    return last;
  };
  EXPECT_DOUBLE_EQ(run(false), run(true));
}

TEST(Slr, AdaRevRuns) {
  auto data = GenerateSparseLr(SmallData());
  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);
  SlrConfig slr;
  slr.adarev = true;
  SlrApp app(&driver, slr);
  ASSERT_TRUE(app.Init(data, 3000).ok());
  f64 first = 0.0;
  f64 last = 0.0;
  for (int p = 0; p < 6; ++p) {
    ASSERT_TRUE(app.RunPass().ok());
    if (p == 0) {
      first = app.LastPassLogLoss();
    }
    last = app.LastPassLogLoss();
  }
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace orion
