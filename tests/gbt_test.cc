// GBT: 1D model-parallel split finding over features; boosting must reduce
// training MSE on the planted piecewise-response data.
#include <gtest/gtest.h>

#include "src/apps/gbt.h"

namespace orion {
namespace {

TEST(Gbt, PlannerPicks1DOverFeatures) {
  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);
  GbtApp app(&driver, GbtConfig{});
  RegressionConfig data;
  data.num_samples = 1000;
  ASSERT_TRUE(app.Init(GenerateRegression(data)).ok());

  const auto& plan = app.split_plan();
  EXPECT_EQ(plan.form, ParallelForm::k1D);
  EXPECT_EQ(plan.space_dim, 0);
  EXPECT_EQ(plan.placements.at(app.columns()).scheme, PartitionScheme::kRange);
}

TEST(Gbt, BoostingReducesMse) {
  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);
  GbtConfig gbt;
  gbt.num_trees = 12;
  GbtApp app(&driver, gbt);
  RegressionConfig data;
  data.num_samples = 2000;
  ASSERT_TRUE(app.Init(GenerateRegression(data)).ok());

  const f64 mse0 = app.TrainMse();
  f64 mse = mse0;
  for (int t = 0; t < gbt.num_trees; ++t) {
    auto result = app.FitOneTree();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_LE(*result, mse + 1e-9) << "tree " << t << " must not increase training MSE";
    mse = *result;
  }
  // The planted signal has variance >> noise (0.1^2): boosting should
  // explain most of it.
  EXPECT_LT(mse, 0.15 * mse0);
  EXPECT_EQ(static_cast<int>(app.trees().size()), gbt.num_trees);
}

TEST(Gbt, SingleWorkerMatchesMultiWorker) {
  RegressionConfig data;
  data.num_samples = 800;
  auto samples = GenerateRegression(data);

  auto run = [&](int workers) {
    DriverConfig cfg;
    cfg.num_workers = workers;
    Driver driver(cfg);
    GbtConfig gbt;
    gbt.num_trees = 5;
    GbtApp app(&driver, gbt);
    EXPECT_TRUE(app.Init(samples).ok());
    f64 mse = 0.0;
    for (int t = 0; t < gbt.num_trees; ++t) {
      mse = *app.FitOneTree();
    }
    return mse;
  };
  // Split finding is deterministic: worker count must not change the model.
  EXPECT_DOUBLE_EQ(run(1), run(4));
}

}  // namespace
}  // namespace orion
