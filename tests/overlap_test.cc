// Comm/compute overlap engine: pipelined prefetch, eager rotation, and the
// zero-copy fast path must be *bit-for-bit* identical to fully synchronous
// execution — same schedule, same apply order, same f64 accumulator folds.
// Also covers the satellite fixes: targeted prefetch-key-cache invalidation
// on DropArray, ForEachSlice chunk boundaries, and exact wire-size metering.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "src/apps/lda.h"
#include "src/apps/sgd_mf.h"
#include "src/runtime/driver.h"
#include "src/runtime/protocol.h"

namespace orion {
namespace {

// Bitwise snapshot of a DistArray's master cells (gathers first).
std::map<i64, std::vector<f32>> Snapshot(Driver* d, DistArrayId id) {
  std::map<i64, std::vector<f32>> out;
  const CellStore& c = d->Cells(id);
  c.ForEachConst([&](i64 key, const f32* v) {
    out[key].assign(v, v + c.value_dim());
  });
  return out;
}

::testing::AssertionResult BitIdentical(const std::map<i64, std::vector<f32>>& a,
                                        const std::map<i64, std::vector<f32>>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "cell counts differ: " << a.size() << " vs " << b.size();
  }
  for (const auto& [key, va] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      return ::testing::AssertionFailure() << "key " << key << " missing";
    }
    if (va.size() != it->second.size() ||
        std::memcmp(va.data(), it->second.data(), va.size() * sizeof(f32)) != 0) {
      return ::testing::AssertionFailure() << "key " << key << " differs bitwise";
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// SGD-MF: rotated (kSpaceTime) partitions with eager rotation + zero-copy.

TEST(Overlap, SgdMfRotationBitForBit) {
  RatingsConfig d;
  d.rows = 200;
  d.cols = 160;
  d.nnz = 8000;
  d.true_rank = 4;
  d.seed = 13;
  auto data = GenerateRatings(d);

  SgdMfConfig mf;
  mf.rank = 4;
  mf.step_size = 0.02f;

  auto run = [&](bool overlap, bool zero_copy) {
    DriverConfig cfg;
    cfg.num_workers = 4;
    cfg.seed = 5;
    cfg.zero_copy = zero_copy;
    auto driver = std::make_unique<Driver>(cfg);
    SgdMfConfig m = mf;
    m.loop_options.overlap = overlap;
    auto app = std::make_unique<SgdMfApp>(driver.get(), m);
    EXPECT_TRUE(app->Init(data, 200, 160).ok());
    std::vector<f64> losses;
    for (int p = 0; p < 4; ++p) {
      EXPECT_TRUE(app->RunPass().ok());
      auto loss = app->EvalLoss();
      EXPECT_TRUE(loss.ok());
      losses.push_back(*loss);
    }
    auto w = Snapshot(driver.get(), app->w());
    auto h = Snapshot(driver.get(), app->h());
    return std::make_tuple(std::move(w), std::move(h), std::move(losses));
  };

  auto [w_sync, h_sync, loss_sync] = run(/*overlap=*/false, /*zero_copy=*/false);
  auto [w_ovl, h_ovl, loss_ovl] = run(/*overlap=*/true, /*zero_copy=*/true);

  EXPECT_TRUE(BitIdentical(w_sync, w_ovl));
  EXPECT_TRUE(BitIdentical(h_sync, h_ovl));
  ASSERT_EQ(loss_sync.size(), loss_ovl.size());
  for (size_t i = 0; i < loss_sync.size(); ++i) {
    EXPECT_EQ(loss_sync[i], loss_ovl[i]) << "pass " << i;  // exact f64
  }
}

TEST(Overlap, SgdMfWavefrontBitForBit) {
  RatingsConfig d;
  d.rows = 120;
  d.cols = 100;
  d.nnz = 4000;
  d.true_rank = 3;
  d.seed = 17;
  auto data = GenerateRatings(d);

  auto run = [&](bool overlap) {
    DriverConfig cfg;
    cfg.num_workers = 3;
    cfg.seed = 9;
    auto driver = std::make_unique<Driver>(cfg);
    SgdMfConfig m;
    m.rank = 3;
    m.loop_options.ordered = true;
    m.loop_options.overlap = overlap;
    auto app = std::make_unique<SgdMfApp>(driver.get(), m);
    EXPECT_TRUE(app->Init(data, 120, 100).ok());
    EXPECT_TRUE(app->train_plan().ordered);
    for (int p = 0; p < 2; ++p) {
      EXPECT_TRUE(app->RunPass().ok());
    }
    return std::make_pair(Snapshot(driver.get(), app->w()),
                          Snapshot(driver.get(), app->h()));
  };

  auto [w_sync, h_sync] = run(false);
  auto [w_ovl, h_ovl] = run(true);
  EXPECT_TRUE(BitIdentical(w_sync, w_ovl));
  EXPECT_TRUE(BitIdentical(h_sync, h_ovl));
}

TEST(Overlap, MetricsVisible) {
  RatingsConfig d;
  d.rows = 120;
  d.cols = 100;
  d.nnz = 4000;
  d.true_rank = 3;
  d.seed = 19;
  auto data = GenerateRatings(d);

  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);  // zero_copy defaults on
  SgdMfConfig m;
  m.rank = 3;          // overlap defaults on
  SgdMfApp app(&driver, m);
  ASSERT_TRUE(app.Init(data, 120, 100).ok());
  ASSERT_TRUE(app.RunPass().ok());
  const LoopMetrics& lm = driver.last_metrics();
  EXPECT_GT(lm.zero_copy_bytes, 0u);       // rotated parts travel zero-copy
  EXPECT_GT(lm.overlap_seconds, 0.0);      // comm thread carried the sends
  EXPECT_GE(lm.prefetch_wait_hidden_seconds, 0.0);
  EXPECT_LE(lm.zero_copy_bytes, lm.bytes_sent);
}

// ---------------------------------------------------------------------------
// LDA with topic totals forced onto the server placement: buffered server
// updates defer to pass end (rank order), so pipelined prefetch must read
// exactly what the synchronous pass reads.

void LdaBitForBit(PrefetchMode prefetch) {
  CorpusConfig c;
  c.num_docs = 150;
  c.vocab = 250;
  c.true_topics = 6;
  c.doc_length = 30;
  c.seed = 23;
  auto corpus = GenerateCorpus(c);

  auto run = [&](bool overlap, bool zero_copy) {
    DriverConfig cfg;
    cfg.num_workers = 4;
    cfg.seed = 3;
    cfg.zero_copy = zero_copy;
    auto driver = std::make_unique<Driver>(cfg);
    LdaConfig l;
    l.num_topics = 6;
    l.loop_options.overlap = overlap;
    l.loop_options.prefetch = prefetch;
    // Make replication unaffordable so the topic totals land on the server
    // placement (read + buffered write through the master).
    l.loop_options.planner.replicate_threshold_floats = 0;
    auto app = std::make_unique<LdaApp>(driver.get(), l);
    EXPECT_TRUE(app->Init(corpus, 150, 250).ok());
    EXPECT_EQ(app->train_plan().placements.at(app->topic_sum()).scheme,
              PartitionScheme::kServer);
    for (int p = 0; p < 3; ++p) {
      EXPECT_TRUE(app->RunPass().ok());
    }
    auto ll = app->EvalLogLikelihood();
    EXPECT_TRUE(ll.ok());
    return std::make_tuple(Snapshot(driver.get(), app->doc_topic()),
                           Snapshot(driver.get(), app->word_topic()),
                           Snapshot(driver.get(), app->topic_sum()), *ll);
  };

  auto [dt_sync, wt_sync, ts_sync, ll_sync] = run(false, false);
  auto [dt_ovl, wt_ovl, ts_ovl, ll_ovl] = run(true, true);

  EXPECT_TRUE(BitIdentical(dt_sync, dt_ovl));
  EXPECT_TRUE(BitIdentical(wt_sync, wt_ovl));
  EXPECT_TRUE(BitIdentical(ts_sync, ts_ovl));
  EXPECT_EQ(ll_sync, ll_ovl);  // exact f64
}

TEST(Overlap, LdaServerBulkPrefetchBitForBit) { LdaBitForBit(PrefetchMode::kBulk); }
TEST(Overlap, LdaServerCachedPrefetchBitForBit) { LdaBitForBit(PrefetchMode::kCached); }

// ---------------------------------------------------------------------------
// Prefetch key-cache invalidation: dropping (re-scattering) the iteration
// space must invalidate cached key lists recorded from it, or a kCached loop
// reads zeros for keys its new iterations touch.

TEST(Overlap, PrefetchCacheInvalidatedByIterSpaceDrop) {
  constexpr i64 kRows = 8;
  constexpr i64 kCols = 8;

  auto run = [&](bool overlap) {
    DriverConfig cfg;
    cfg.num_workers = 2;
    cfg.seed = 21;
    cfg.zero_copy = overlap;
    auto driver = std::make_unique<Driver>(cfg);
    auto data = driver->CreateDistArray("data", {kRows, kCols}, 1, Density::kSparse);
    auto out_r = driver->CreateDistArray("out_r", {kRows}, 1, Density::kDense);
    auto out_c = driver->CreateDistArray("out_c", {kCols}, 1, Density::kDense);
    auto table = driver->CreateDistArray("table", {kRows + kCols - 1}, 1, Density::kDense);
    {
      CellStore& cells = driver->MutableCells(data);
      for (i64 i = 0; i < kRows; ++i) {
        *cells.GetOrCreate(i * kCols + i) = 1.0f;  // diagonal
      }
      driver->MapCells(table, [](i64 key, f32* v) { v[0] = static_cast<f32>(key + 1); });
    }

    LoopSpec spec;
    spec.iter_space = data;
    spec.iter_extents = {kRows, kCols};
    spec.AddAccess(out_r, "out_r", {Expr::LoopIndex(0)}, true);
    spec.AddAccess(out_c, "out_c", {Expr::LoopIndex(1)}, true);
    // Data-skewed subscript i + j: never aligned, so with replication priced
    // out the planner must serve it from the master.
    spec.AddAccess(table, "table", {Expr::Add(Expr::LoopIndex(0), Expr::LoopIndex(1))},
                   false);

    LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
      const i64 k[1] = {idx[0] + idx[1]};
      const f32 t = ctx.Read(table, k)[0];
      const i64 ki[1] = {idx[0]};
      const i64 kj[1] = {idx[1]};
      ctx.Mutate(out_r, ki)[0] += value[0] * t;
      ctx.Mutate(out_c, kj)[0] += value[0] * t;
    };

    ParallelForOptions options;
    options.prefetch = PrefetchMode::kCached;
    options.overlap = overlap;
    options.planner.replicate_threshold_floats = 0;
    auto loop = driver->Compile(spec, kernel, options);
    EXPECT_TRUE(loop.ok()) << loop.status();
    EXPECT_EQ(driver->PlanOf(*loop).placements.at(table).scheme, PartitionScheme::kServer);

    EXPECT_TRUE(driver->Execute(*loop).ok());  // pass 1: records + caches keys

    // Mutate the iteration space: the gather drops it from workers, and the
    // re-scatter ships new records into *blocks that were non-empty in
    // pass 1* — so their key lists are cached — while needing table keys
    // (1 and 13, both odd) the diagonal (all even keys) never fetched. A
    // stale cache reads those as zero.
    {
      CellStore& cells = driver->MutableCells(data);
      *cells.GetOrCreate(1 * kCols + 0) = 1.0f;              // (1, 0) -> key 1
      *cells.GetOrCreate(6 * kCols + (kCols - 1)) = 1.0f;    // (6, 7) -> key 13
    }
    EXPECT_TRUE(driver->Execute(*loop).ok());  // pass 2: must re-record

    return std::make_pair(Snapshot(driver.get(), out_r), Snapshot(driver.get(), out_c));
  };

  // Expected totals (exact in f32: all values are small integers). Pass 1
  // covers the diagonal; pass 2 covers the diagonal plus the two new cells.
  std::map<i64, std::vector<f32>> want_r;
  std::map<i64, std::vector<f32>> want_c;
  for (i64 i = 0; i < kRows; ++i) {
    want_r[i] = {2.0f * static_cast<f32>(2 * i + 1)};
    want_c[i] = {2.0f * static_cast<f32>(2 * i + 1)};
  }
  want_r[1][0] += 2.0f;          // (1,0) reads table[1] = 2
  want_c[0][0] += 2.0f;
  want_r[6][0] += 14.0f;         // (6,7) reads table[13] = 14
  want_c[kCols - 1][0] += 14.0f;

  auto [r_ovl, c_ovl] = run(true);
  EXPECT_TRUE(BitIdentical(want_r, r_ovl));
  EXPECT_TRUE(BitIdentical(want_c, c_ovl));
  auto [r_sync, c_sync] = run(false);
  EXPECT_TRUE(BitIdentical(r_sync, r_ovl));
  EXPECT_TRUE(BitIdentical(c_sync, c_ovl));
}

// ---------------------------------------------------------------------------
// ForEachSlice chunk boundaries.

TEST(CellStoreSlice, EmptyStoreVisitsNothing) {
  CellStore s(1, CellStore::Layout::kHashed, 0);
  int visits = 0;
  for (int c = 0; c < 4; ++c) {
    s.ForEachSlice(c, 4, [&](i64, f32*) { ++visits; });
  }
  EXPECT_EQ(visits, 0);
}

TEST(CellStoreSlice, MoreChunksThanCellsCoversAllOnce) {
  CellStore s(1, CellStore::Layout::kHashed, 0);
  *s.GetOrCreate(10) = 1.0f;
  *s.GetOrCreate(20) = 2.0f;
  std::vector<i64> seen;
  for (int c = 0; c < 5; ++c) {
    s.ForEachSlice(c, 5, [&](i64 key, f32*) { seen.push_back(key); });
  }
  EXPECT_EQ(seen, s.keys());  // every cell exactly once, in sequence order
}

TEST(CellStoreSlice, ChunksAreContiguousAndComplete) {
  CellStore s(2, CellStore::Layout::kHashed, 0);
  for (i64 k = 0; k < 7; ++k) {
    s.GetOrCreate(k * 3)[0] = static_cast<f32>(k);
  }
  std::vector<i64> seen;
  for (int c = 0; c < 3; ++c) {
    s.ForEachSlice(c, 3, [&](i64 key, f32*) { seen.push_back(key); });
  }
  EXPECT_EQ(seen, s.keys());
}

TEST(CellStoreSlice, SingleChunkEqualsForEach) {
  CellStore s(1, CellStore::Layout::kHashed, 0);
  for (i64 k = 0; k < 5; ++k) {
    *s.GetOrCreate(k + 100) = static_cast<f32>(k);
  }
  std::vector<i64> sliced;
  std::vector<i64> full;
  s.ForEachSlice(0, 1, [&](i64 key, f32*) { sliced.push_back(key); });
  s.ForEach([&](i64 key, f32*) { full.push_back(key); });
  EXPECT_EQ(sliced, full);
}

// ---------------------------------------------------------------------------
// Zero-copy metering: SerializedBytes / EncodedSize must equal the real
// encoding, or the fabric's cost model drifts between the two paths.

TEST(ZeroCopy, SerializedBytesMatchesEncodeHashed) {
  PartData pd;
  pd.array = 3;
  pd.part = 7;
  pd.mode = PartDataMode::kApplyBufferUdf;
  pd.cells = CellStore(4, CellStore::Layout::kHashed, 0);
  for (i64 k = 0; k < 13; ++k) {
    pd.cells.GetOrCreate(k * 11)[2] = static_cast<f32>(k);
  }
  EXPECT_EQ(pd.EncodedSize(), pd.Encode().size());
}

TEST(ZeroCopy, SerializedBytesMatchesEncodeDense) {
  PartData pd;
  pd.array = 0;
  pd.part = -1;
  pd.mode = PartDataMode::kOverwrite;
  pd.cells = CellStore::DenseRange(3, 5, 20);
  EXPECT_EQ(pd.EncodedSize(), pd.Encode().size());

  PartData empty;
  empty.cells = CellStore(1, CellStore::Layout::kHashed, 0);
  EXPECT_EQ(empty.EncodedSize(), empty.Encode().size());
}

}  // namespace
}  // namespace orion
