// Schedule-shape properties (paper Fig. 7 / Fig. 8), parameterized over
// worker counts and pipeline depths.
#include <gtest/gtest.h>

#include <set>

#include "src/sched/schedule.h"

namespace orion {
namespace {

class RotationTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RotationTest, EveryWorkerVisitsEveryPartExactlyOnce) {
  const auto [workers, depth] = GetParam();
  RotationSchedule sched{workers, depth};
  for (int w = 0; w < workers; ++w) {
    std::set<int> seen;
    for (int t = 0; t < sched.num_steps(); ++t) {
      seen.insert(sched.TimePartAt(w, t));
    }
    EXPECT_EQ(static_cast<int>(seen.size()), sched.num_time_parts());
  }
}

TEST_P(RotationTest, NoTwoWorkersShareAPartInAStep) {
  const auto [workers, depth] = GetParam();
  RotationSchedule sched{workers, depth};
  for (int t = 0; t < sched.num_steps(); ++t) {
    std::set<int> used;
    for (int w = 0; w < workers; ++w) {
      EXPECT_TRUE(used.insert(sched.TimePartAt(w, t)).second)
          << "collision at step " << t;
    }
  }
}

TEST_P(RotationTest, InitialResidencyCoversFirstDepthSteps) {
  const auto [workers, depth] = GetParam();
  RotationSchedule sched{workers, depth};
  for (int w = 0; w < workers; ++w) {
    for (int t = 0; t < depth; ++t) {
      EXPECT_EQ(sched.InitialOwner(sched.TimePartAt(w, t)), w)
          << "step " << t << " should use an initially-local partition";
    }
  }
}

TEST_P(RotationTest, PartFlowsAlongThePredecessorRing) {
  const auto [workers, depth] = GetParam();
  if (workers == 1) {
    return;
  }
  RotationSchedule sched{workers, depth};
  // If worker w executes part p at step t, its predecessor executes p at
  // step t + depth (so a part sent right after execution arrives with
  // `depth` steps of slack — the pipelining of Fig. 8).
  for (int w = 0; w < workers; ++w) {
    const int pred = static_cast<int>(sched.SendTo(w));
    for (int t = 0; t + depth < sched.num_steps(); ++t) {
      EXPECT_EQ(sched.TimePartAt(pred, t + depth), sched.TimePartAt(w, t));
    }
  }
}

TEST_P(RotationTest, RingIsConsistent) {
  const auto [workers, depth] = GetParam();
  RotationSchedule sched{workers, depth};
  if (workers == 1) {
    EXPECT_EQ(sched.SendTo(0), kMasterRank);
    return;
  }
  for (int w = 0; w < workers; ++w) {
    EXPECT_EQ(sched.RecvFrom(static_cast<int>(sched.SendTo(w))), w);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RotationTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 16),
                                            ::testing::Values(1, 2, 3)));

class WavefrontTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WavefrontTest, EveryCellExecutedExactlyOnce) {
  const auto [workers, parts] = GetParam();
  WavefrontSchedule sched{workers, parts};
  std::set<std::pair<int, int>> executed;
  for (int t = 0; t < sched.num_steps(); ++t) {
    for (int w = 0; w < workers; ++w) {
      const int tau = sched.TimePartAt(w, t);
      if (tau >= 0) {
        EXPECT_TRUE(executed.insert({w, tau}).second);
      }
    }
  }
  EXPECT_EQ(static_cast<int>(executed.size()), workers * parts);
}

TEST_P(WavefrontTest, DiagonalOrderRespectsDependences) {
  // (w, tau) must run strictly after (w-1, tau) and after (w, tau-1).
  const auto [workers, parts] = GetParam();
  auto step_of = [&](int w, int tau) { return w + tau; };
  for (int w = 0; w < workers; ++w) {
    for (int tau = 0; tau < parts; ++tau) {
      if (w > 0) {
        EXPECT_GT(step_of(w, tau), step_of(w - 1, tau));
      }
      if (tau > 0) {
        EXPECT_GT(step_of(w, tau), step_of(w, tau - 1));
      }
    }
  }
}

TEST_P(WavefrontTest, AtMostOnePartPerWorkerPerStep) {
  const auto [workers, parts] = GetParam();
  WavefrontSchedule sched{workers, parts};
  for (int t = 0; t < sched.num_steps(); ++t) {
    std::set<int> used;
    for (int w = 0; w < workers; ++w) {
      const int tau = sched.TimePartAt(w, t);
      if (tau >= 0) {
        EXPECT_TRUE(used.insert(tau).second);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, WavefrontTest,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(1, 2, 4, 8)));

}  // namespace
}  // namespace orion
