// Parallelization planning (paper Sec. 4.3): candidate enumeration,
// communication-cost placement, application overrides, and fallbacks.
#include <gtest/gtest.h>

#include "src/analysis/plan.h"

namespace orion {
namespace {

DepVec V2(DepEntry a, DepEntry b) {
  DepVec d(2);
  d[0] = a;
  d[1] = b;
  return d;
}

TEST(Candidates, OneDimensional) {
  const auto deps = {V2(DepEntry::Value(0), DepEntry::PosInf())};
  const auto c = Find1DCandidates({deps.begin(), deps.end()}, 2);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], 0);
}

TEST(Candidates, NoDepsMeansEveryDimIs1D) {
  const auto c = Find1DCandidates({}, 3);
  EXPECT_EQ(c.size(), 3u);
}

TEST(Candidates, TwoDimensionalOrCondition) {
  std::vector<DepVec> deps = {V2(DepEntry::Value(0), DepEntry::PosInf()),
                              V2(DepEntry::PosInf(), DepEntry::Value(0))};
  EXPECT_TRUE(Find1DCandidates(deps, 2).empty());
  const auto c = Find2DCandidates(deps, 2);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], (std::pair<int, int>{0, 1}));
}

TEST(Candidates, BothNonZeroKills2D) {
  std::vector<DepVec> deps = {V2(DepEntry::Value(1), DepEntry::Value(1))};
  EXPECT_TRUE(Find2DCandidates(deps, 2).empty());
}

// ---- Whole-loop planning ----

LoopSpec MfSpec(bool buffered_writes = false) {
  LoopSpec spec;
  spec.iter_space = 0;
  spec.iter_extents = {1000, 600};
  spec.AddClassifiedAccess(1, "W", {Subscript::MakeLoopIndex(0)}, false);
  spec.AddClassifiedAccess(2, "H", {Subscript::MakeLoopIndex(1)}, false);
  spec.AddClassifiedAccess(1, "W", {Subscript::MakeLoopIndex(0)}, true, buffered_writes);
  spec.AddClassifiedAccess(2, "H", {Subscript::MakeLoopIndex(1)}, true, buffered_writes);
  return spec;
}

std::map<DistArrayId, ArrayStats> MfStats() {
  return {{1, ArrayStats{1000, 8}}, {2, ArrayStats{600, 8}}};
}

TEST(Plan, MfPicks2DAndRotatesTheSmallerArray) {
  PlannerOptions options;
  options.num_workers = 4;
  const auto plan = PlanLoop(MfSpec(), MfStats(), options);
  EXPECT_EQ(plan.form, ParallelForm::k2D);
  EXPECT_EQ(plan.space_dim, 0);  // W (larger) stays put
  EXPECT_EQ(plan.time_dim, 1);   // H (smaller) rotates
  EXPECT_EQ(plan.placements.at(1).scheme, PartitionScheme::kRange);
  EXPECT_EQ(plan.placements.at(2).scheme, PartitionScheme::kSpaceTime);
}

TEST(Plan, OrientationFollowsArraySizes) {
  // Make W much smaller than H: now W should rotate (space over dim 1).
  auto stats = MfStats();
  stats[1] = ArrayStats{50, 8};
  stats[2] = ArrayStats{5000, 8};
  PlannerOptions options;
  options.num_workers = 4;
  const auto plan = PlanLoop(MfSpec(), stats, options);
  EXPECT_EQ(plan.form, ParallelForm::k2D);
  EXPECT_EQ(plan.space_dim, 1);
  EXPECT_EQ(plan.time_dim, 0);
}

TEST(Plan, ForcedDimsRespected) {
  PlannerOptions options;
  options.num_workers = 4;
  options.force_space_dim = 1;
  options.force_time_dim = 0;
  const auto plan = PlanLoop(MfSpec(), MfStats(), options);
  EXPECT_EQ(plan.space_dim, 1);
  EXPECT_EQ(plan.time_dim, 0);
}

TEST(Plan, ReadOnlyLoopPrefersCheapestLayout) {
  LoopSpec spec;
  spec.iter_space = 0;
  spec.iter_extents = {1000, 600};
  spec.AddClassifiedAccess(1, "W", {Subscript::MakeLoopIndex(0)}, false);
  spec.AddClassifiedAccess(2, "H", {Subscript::MakeLoopIndex(1)}, false);
  PlannerOptions options;
  options.num_workers = 4;
  const auto plan = PlanLoop(spec, MfStats(), options);
  // 1D over dim 0 with H replicated read-only costs |H| — cheaper than
  // rotating H (N*|H|).
  EXPECT_EQ(plan.form, ParallelForm::k1D);
  EXPECT_EQ(plan.placements.at(2).scheme, PartitionScheme::kReplicated);
}

TEST(Plan, Prefer2dOverrides) {
  LoopSpec spec;
  spec.iter_space = 0;
  spec.iter_extents = {1000, 600};
  spec.AddClassifiedAccess(1, "W", {Subscript::MakeLoopIndex(0)}, false);
  spec.AddClassifiedAccess(2, "H", {Subscript::MakeLoopIndex(1)}, false);
  PlannerOptions options;
  options.num_workers = 4;
  options.prefer_2d = true;
  const auto plan = PlanLoop(spec, MfStats(), options);
  EXPECT_EQ(plan.form, ParallelForm::k2D);
}

TEST(Plan, UnbufferedUnalignedWriteFallsToSerial) {
  LoopSpec spec;
  spec.iter_space = 0;
  spec.iter_extents = {1000};
  spec.AddClassifiedAccess(1, "w", {Subscript::MakeRuntime()}, false);
  spec.AddClassifiedAccess(1, "w", {Subscript::MakeRuntime()}, true);  // NOT buffered
  PlannerOptions options;
  options.num_workers = 4;
  const auto plan = PlanLoop(spec, {{1, ArrayStats{100, 1}}}, options);
  EXPECT_EQ(plan.form, ParallelForm::kSerial);
  EXPECT_NE(plan.explanation.find("Buffer"), std::string::npos) << plan.explanation;
}

TEST(Plan, BufferingTheWriteEnablesDataParallel1D) {
  LoopSpec spec;
  spec.iter_space = 0;
  spec.iter_extents = {1000};
  spec.AddClassifiedAccess(1, "w", {Subscript::MakeRuntime()}, false);
  spec.AddClassifiedAccess(1, "w", {Subscript::MakeRuntime()}, true, /*buffered=*/true);
  PlannerOptions options;
  options.num_workers = 4;
  options.replicate_threshold_floats = 0;
  const auto plan = PlanLoop(spec, {{1, ArrayStats{100, 1}}}, options);
  EXPECT_EQ(plan.form, ParallelForm::k1D);
  EXPECT_EQ(plan.placements.at(1).scheme, PartitionScheme::kServer);
}

TEST(Plan, SmallBufferedTargetReplicates) {
  LoopSpec spec;
  spec.iter_space = 0;
  spec.iter_extents = {1000, 600};
  spec.AddClassifiedAccess(1, "W", {Subscript::MakeLoopIndex(0)}, false);
  spec.AddClassifiedAccess(1, "W", {Subscript::MakeLoopIndex(0)}, true);
  spec.AddClassifiedAccess(3, "totals", {Subscript::MakeConstant(0)}, false);
  spec.AddClassifiedAccess(3, "totals", {Subscript::MakeConstant(0)}, true, /*buffered=*/true);
  PlannerOptions options;
  options.num_workers = 4;
  auto stats = MfStats();
  stats[3] = ArrayStats{1, 20};
  const auto plan = PlanLoop(spec, stats, options);
  EXPECT_NE(plan.form, ParallelForm::kSerial);
  EXPECT_EQ(plan.placements.at(3).scheme, PartitionScheme::kReplicated);
}

TEST(Plan, StencilGoesUnimodular) {
  LoopSpec spec;
  spec.iter_space = 0;
  spec.iter_extents = {100, 100};
  spec.AddClassifiedAccess(1, "A",
                           {Subscript::MakeLoopIndex(0), Subscript::MakeLoopIndex(1)}, true);
  spec.AddClassifiedAccess(
      1, "A", {Subscript::MakeLoopIndex(0, -1), Subscript::MakeLoopIndex(1)}, false);
  spec.AddClassifiedAccess(
      1, "A", {Subscript::MakeLoopIndex(0), Subscript::MakeLoopIndex(1, -1)}, false);
  PlannerOptions options;
  options.num_workers = 4;
  const auto plan = PlanLoop(spec, {{1, ArrayStats{10000, 1}}}, options);
  EXPECT_EQ(plan.form, ParallelForm::k2DUnimodular);
  EXPECT_FALSE(plan.transform.IsIdentity());
  EXPECT_EQ(plan.placements.at(1).scheme, PartitionScheme::kServer);
}

TEST(Plan, UnimodularCanBeDisabled) {
  LoopSpec spec;
  spec.iter_space = 0;
  spec.iter_extents = {100, 100};
  spec.AddClassifiedAccess(1, "A",
                           {Subscript::MakeLoopIndex(0), Subscript::MakeLoopIndex(1)}, true);
  spec.AddClassifiedAccess(
      1, "A", {Subscript::MakeLoopIndex(0, -1), Subscript::MakeLoopIndex(1)}, false);
  spec.AddClassifiedAccess(
      1, "A", {Subscript::MakeLoopIndex(0), Subscript::MakeLoopIndex(1, -1)}, false);
  PlannerOptions options;
  options.num_workers = 4;
  options.allow_unimodular = false;
  const auto plan = PlanLoop(spec, {{1, ArrayStats{10000, 1}}}, options);
  EXPECT_EQ(plan.form, ParallelForm::kSerial);
}

TEST(Plan, OrderedFlagCarriesThrough) {
  LoopSpec spec = MfSpec();
  spec.ordered = true;
  PlannerOptions options;
  options.num_workers = 4;
  const auto plan = PlanLoop(spec, MfStats(), options);
  EXPECT_TRUE(plan.ordered);
  // Ordered loops keep write-write dependences; MF's write-write pairs are
  // same-distance so the plan is unchanged.
  EXPECT_EQ(plan.form, ParallelForm::k2D);
}

TEST(Plan, ExplanationMentionsDeps) {
  PlannerOptions options;
  options.num_workers = 4;
  const auto plan = PlanLoop(MfSpec(), MfStats(), options);
  EXPECT_NE(plan.explanation.find("deps={"), std::string::npos);
  EXPECT_NE(plan.ToString().find("2D"), std::string::npos);
}

}  // namespace
}  // namespace orion
