// Serializability property tests: randomly generated loop bodies with
// dependence-carrying accesses must produce, under every schedule the
// planner picks, exactly the result of a serial execution.
//
// The kernels use *commutative-per-cell* updates (addition and independent
// per-cell multiplication), so every serialization yields the same final
// state — making "equals some serial order" checkable as exact equality.
#include <gtest/gtest.h>

#include <map>

#include "src/runtime/driver.h"

namespace orion {
namespace {

struct Shape {
  int workers;
  bool ordered;
  int pipeline_depth;
};

class SerializabilityTest : public ::testing::TestWithParam<std::tuple<int, bool, int, int>> {};

TEST_P(SerializabilityTest, ParallelEqualsSerial) {
  const auto [workers, ordered, depth, seed] = GetParam();

  // Random sparse 2-D iteration space.
  Rng rng(static_cast<u64>(seed) * 2654435761u + 17);
  const i64 rows = 20 + static_cast<i64>(rng.NextBounded(60));
  const i64 cols = 20 + static_cast<i64>(rng.NextBounded(60));
  const i64 nnz = 200 + static_cast<i64>(rng.NextBounded(800));
  std::map<i64, f32> entries;
  for (i64 n = 0; n < nnz; ++n) {
    const i64 i = rng.NextZipf(rows, 0.5);
    const i64 j = rng.NextZipf(cols, 0.5);
    entries[i * cols + j] = 0.25f + 0.5f * static_cast<f32>(rng.NextDouble());
  }

  DriverConfig cfg;
  cfg.num_workers = workers;
  cfg.seed = static_cast<u64>(seed) + 1;
  Driver driver(cfg);
  auto data = driver.CreateDistArray("data", {rows, cols}, 1, Density::kSparse);
  auto row_acc = driver.CreateDistArray("row_acc", {rows}, 2, Density::kDense);
  auto col_acc = driver.CreateDistArray("col_acc", {cols}, 2, Density::kDense);
  {
    CellStore& cells = driver.MutableCells(data);
    for (const auto& [key, v] : entries) {
      *cells.GetOrCreate(key) = v;
    }
    // row_acc/col_acc cell = [sum, product], product starts at 1.
    driver.MapCells(row_acc, [](i64, f32* v) { v[1] = 1.0f; });
    driver.MapCells(col_acc, [](i64, f32* v) { v[1] = 1.0f; });
  }

  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {rows, cols};
  spec.ordered = ordered;
  spec.AddAccess(row_acc, "row_acc", {Expr::LoopIndex(0)}, false);
  spec.AddAccess(row_acc, "row_acc", {Expr::LoopIndex(0)}, true);
  spec.AddAccess(col_acc, "col_acc", {Expr::LoopIndex(1)}, false);
  spec.AddAccess(col_acc, "col_acc", {Expr::LoopIndex(1)}, true);

  int acc = driver.CreateAccumulator();
  LoopKernel kernel = [&, acc](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 ki[1] = {idx[0]};
    const i64 kj[1] = {idx[1]};
    f32* r = ctx.Mutate(row_acc, ki);
    f32* c = ctx.Mutate(col_acc, kj);
    r[0] += value[0];
    r[1] *= 1.0f + value[0] * 0.125f;
    c[0] += 2.0f * value[0];
    c[1] *= 1.0f + value[0] * 0.0625f;
    ctx.AccumulatorAdd(acc, static_cast<f64>(value[0]));
  };

  ParallelForOptions options;
  options.ordered = ordered;
  options.pipeline_depth = depth;
  auto loop = driver.Compile(spec, kernel, options);
  ASSERT_TRUE(loop.ok()) << loop.status();
  const int passes = 2;
  for (int p = 0; p < passes; ++p) {
    ASSERT_TRUE(driver.Execute(*loop).ok());
  }

  // Serial reference over the same entries (any order works because cell
  // updates commute).
  std::map<i64, std::pair<f64, f64>> want_row;
  std::map<i64, std::pair<f64, f64>> want_col;
  f64 want_acc = 0.0;
  for (int p = 0; p < passes; ++p) {
    for (const auto& [key, v] : entries) {
      const i64 i = key / cols;
      const i64 j = key % cols;
      auto& r = want_row.try_emplace(i, 0.0, 1.0).first->second;
      auto& c = want_col.try_emplace(j, 0.0, 1.0).first->second;
      r.first += v;
      r.second *= 1.0 + static_cast<f64>(v) * 0.125;
      c.first += 2.0 * v;
      c.second *= 1.0 + static_cast<f64>(v) * 0.0625;
      want_acc += v;
    }
  }

  const CellStore& rstore = driver.Cells(row_acc);
  for (const auto& [i, rc] : want_row) {
    const f32* v = rstore.Get(i);
    ASSERT_NE(v, nullptr);
    EXPECT_NEAR(v[0], rc.first, 1e-3 * std::abs(rc.first) + 1e-4) << "row " << i;
    EXPECT_NEAR(v[1], rc.second, 1e-3 * std::abs(rc.second) + 1e-4) << "row " << i;
  }
  const CellStore& cstore = driver.Cells(col_acc);
  for (const auto& [j, cc] : want_col) {
    const f32* v = cstore.Get(j);
    ASSERT_NE(v, nullptr);
    EXPECT_NEAR(v[0], cc.first, 1e-3 * std::abs(cc.first) + 1e-4) << "col " << j;
    EXPECT_NEAR(v[1], cc.second, 1e-3 * std::abs(cc.second) + 1e-4) << "col " << j;
  }
  EXPECT_NEAR(driver.AccumulatorValue(acc), want_acc, 1e-6 * want_acc + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    SchedulesAndSeeds, SerializabilityTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 5),   // workers
                       ::testing::Values(false, true),  // ordered
                       ::testing::Values(1, 2, 3),      // pipeline depth
                       ::testing::Values(0, 1, 2)));    // data seed

}  // namespace
}  // namespace orion
