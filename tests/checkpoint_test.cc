// Checkpoint file format: round-trips for every CellStore layout, and
// descriptive error Statuses (never a crash) on missing, truncated, or
// corrupted files.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/dsm/cell_store.h"
#include "src/dsm/checkpoint.h"

namespace orion {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/orion_ckpt_" + name;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

CellStore MakeSparse() {
  CellStore s(3, CellStore::Layout::kHashed, 0);
  for (i64 key : {5, 17, 99, 1024, 1 << 20}) {
    f32* v = s.GetOrCreate(key);
    for (i32 d = 0; d < 3; ++d) {
      v[d] = static_cast<f32>(key) * 0.25f + static_cast<f32>(d);
    }
  }
  return s;
}

CellStore MakeDense() {
  CellStore s(2, CellStore::Layout::kFullDense, 40);
  for (i64 key = 0; key < 40; ++key) {
    f32* v = s.GetOrCreate(key);
    v[0] = static_cast<f32>(key);
    v[1] = -static_cast<f32>(key);
  }
  return s;
}

void ExpectSameCells(const CellStore& a, const CellStore& b) {
  ASSERT_EQ(a.value_dim(), b.value_dim());
  ASSERT_EQ(a.NumCells(), b.NumCells());
  a.ForEachConst([&](i64 key, const f32* va) {
    const f32* vb = b.Get(key);
    ASSERT_NE(vb, nullptr) << "missing key " << key;
    for (i32 d = 0; d < a.value_dim(); ++d) {
      EXPECT_EQ(va[d], vb[d]) << "key " << key << " dim " << d;
    }
  });
}

TEST(Checkpoint, SparseRoundTrip) {
  const std::string path = TestPath("sparse");
  const CellStore original = MakeSparse();
  ASSERT_TRUE(CheckpointWrite(path, original).ok());
  auto restored = CheckpointRead(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameCells(original, *restored);
}

TEST(Checkpoint, DenseRoundTrip) {
  const std::string path = TestPath("dense");
  const CellStore original = MakeDense();
  ASSERT_TRUE(CheckpointWrite(path, original).ok());
  auto restored = CheckpointRead(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameCells(original, *restored);
}

TEST(Checkpoint, DenseRangeRoundTrip) {
  const std::string path = TestPath("dense_range");
  CellStore original = CellStore::DenseRange(2, 10, 29);
  for (i64 key = 10; key <= 29; ++key) {
    original.GetOrCreate(key)[0] = static_cast<f32>(key) * 1.5f;
  }
  ASSERT_TRUE(CheckpointWrite(path, original).ok());
  auto restored = CheckpointRead(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameCells(original, *restored);
}

TEST(Checkpoint, MissingFileIsIoError) {
  auto result = CheckpointRead(TestPath("does_not_exist"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("does_not_exist"), std::string::npos);
}

TEST(Checkpoint, GarbageHeaderIsRejected) {
  const std::string path = TestPath("garbage");
  WriteAll(path, std::vector<char>(64, 'x'));
  auto result = CheckpointRead(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("not an Orion checkpoint"), std::string::npos);
}

TEST(Checkpoint, EmptyFileIsRejected) {
  const std::string path = TestPath("empty");
  WriteAll(path, {});
  auto result = CheckpointRead(path);
  ASSERT_FALSE(result.ok());  // too short for even a header
}

TEST(Checkpoint, TruncatedFileIsRejected) {
  const std::string path = TestPath("truncated");
  ASSERT_TRUE(CheckpointWrite(path, MakeSparse()).ok());
  std::vector<char> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 16u);
  bytes.resize(bytes.size() - 11);
  WriteAll(path, bytes);
  auto result = CheckpointRead(path);
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(result.status().message().empty());
}

TEST(Checkpoint, FlippedPayloadByteFailsChecksum) {
  const std::string path = TestPath("corrupt");
  ASSERT_TRUE(CheckpointWrite(path, MakeDense()).ok());
  std::vector<char> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 40u);
  bytes[bytes.size() - 3] ^= 0x40;  // flip a bit deep in the payload
  WriteAll(path, bytes);
  auto result = CheckpointRead(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);
}

TEST(Checkpoint, FutureVersionIsRejected) {
  const std::string path = TestPath("future_version");
  ASSERT_TRUE(CheckpointWrite(path, MakeSparse()).ok());
  std::vector<char> bytes = ReadAll(path);
  // Header layout: magic u32, version u32, ...
  bytes[4] = 127;
  WriteAll(path, bytes);
  auto result = CheckpointRead(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("version"), std::string::npos);
}

}  // namespace
}  // namespace orion
