// End-to-end smoke tests for the Orion runtime: a small MF-shaped loop is
// compiled, planned (2D), scattered, and executed; the distributed result
// must match a serial reference execution.
#include <gtest/gtest.h>

#include <map>

#include "src/runtime/driver.h"

namespace orion {
namespace {

// Builds a sparse 2-D "data" array with deterministic entries.
std::map<i64, f32> FillData(Driver* driver, DistArrayId data, i64 rows, i64 cols, int stride) {
  std::map<i64, f32> entries;
  CellStore& cells = driver->MutableCells(data);
  const KeySpace& ks = driver->Meta(data).key_space;
  for (i64 i = 0; i < rows; ++i) {
    for (i64 j = i % stride; j < cols; j += stride) {
      const i64 key = ks.Encode(std::vector<i64>{i, j});
      const f32 v = static_cast<f32>((i * 31 + j * 17) % 13) + 1.0f;
      *cells.GetOrCreate(key) = v;
      entries[key] = v;
    }
  }
  return entries;
}

TEST(RuntimeSmoke, TwoDUnorderedRowColSums) {
  const i64 kRows = 24;
  const i64 kCols = 18;
  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);

  auto data = driver.CreateDistArray("data", {kRows, kCols}, 1, Density::kSparse);
  auto row_sum = driver.CreateDistArray("row_sum", {kRows}, 1, Density::kDense);
  auto col_sum = driver.CreateDistArray("col_sum", {kCols}, 1, Density::kDense);
  auto entries = FillData(&driver, data, kRows, kCols, 3);

  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {kRows, kCols};
  spec.AddAccess(row_sum, "row_sum", {Expr::LoopIndex(0)}, /*is_write=*/false);
  spec.AddAccess(row_sum, "row_sum", {Expr::LoopIndex(0)}, /*is_write=*/true);
  spec.AddAccess(col_sum, "col_sum", {Expr::LoopIndex(1)}, /*is_write=*/false);
  spec.AddAccess(col_sum, "col_sum", {Expr::LoopIndex(1)}, /*is_write=*/true);

  int acc = driver.CreateAccumulator();
  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 i = idx[0];
    const i64 j = idx[1];
    f32* r = ctx.Mutate(row_sum, std::vector<i64>{i});
    f32* c = ctx.Mutate(col_sum, std::vector<i64>{j});
    r[0] += value[0];
    c[0] += value[0];
    ctx.AccumulatorAdd(acc, value[0]);
  };

  auto loop = driver.Compile(spec, kernel, {});
  ASSERT_TRUE(loop.ok()) << loop.status();
  const auto& plan = driver.PlanOf(*loop);
  EXPECT_EQ(plan.form, ParallelForm::k2D);
  EXPECT_FALSE(plan.ordered);

  const int kPasses = 3;
  for (int p = 0; p < kPasses; ++p) {
    ASSERT_TRUE(driver.Execute(*loop).ok());
  }

  // Serial reference.
  std::map<i64, f32> want_row;
  std::map<i64, f32> want_col;
  f64 want_total = 0.0;
  const KeySpace& ks = driver.Meta(data).key_space;
  for (const auto& [key, v] : entries) {
    auto idx = ks.Decode(key);
    want_row[idx[0]] += static_cast<f32>(kPasses) * v;
    want_col[idx[1]] += static_cast<f32>(kPasses) * v;
    want_total += static_cast<f64>(kPasses) * v;
  }

  const CellStore& rows = driver.Cells(row_sum);
  for (i64 i = 0; i < kRows; ++i) {
    const f32* v = rows.Get(i);
    ASSERT_NE(v, nullptr);
    EXPECT_FLOAT_EQ(v[0], want_row.count(i) ? want_row[i] : 0.0f) << "row " << i;
  }
  const CellStore& cols = driver.Cells(col_sum);
  for (i64 j = 0; j < kCols; ++j) {
    const f32* v = cols.Get(j);
    ASSERT_NE(v, nullptr);
    EXPECT_FLOAT_EQ(v[0], want_col.count(j) ? want_col[j] : 0.0f) << "col " << j;
  }
  EXPECT_DOUBLE_EQ(driver.AccumulatorValue(acc), want_total);
}

TEST(RuntimeSmoke, OneDWithServerReadsAndBufferedWrites) {
  // 1-D iteration over samples; reads/writes a server-hosted weight array
  // through data-dependent subscripts and a DistArray Buffer (the SLR
  // shape).
  const i64 kSamples = 40;
  const i64 kFeatures = 16;
  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);

  auto data = driver.CreateDistArray("samples", {kSamples}, 1, Density::kSparse);
  auto weights = driver.CreateDistArray("weights", {kFeatures}, 1, Density::kDense);
  driver.RegisterBuffer(weights, 1, MakeAddApplyFn());

  {
    CellStore& cells = driver.MutableCells(data);
    for (i64 s = 0; s < kSamples; ++s) {
      *cells.GetOrCreate(s) = static_cast<f32>(s % 7);
    }
  }

  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {kSamples};
  spec.AddAccess(weights, "weights", {Expr::Runtime("feature")}, /*is_write=*/false);
  spec.AddAccess(weights, "weights", {Expr::Runtime("feature")}, /*is_write=*/true,
                 /*buffered=*/true);

  // Force server placement: a tiny replicate threshold.
  ParallelForOptions options;
  options.planner.replicate_threshold_floats = 0;

  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    // Each sample touches features (s % kFeatures) and (s*3 % kFeatures).
    const i64 f1 = idx[0] % kFeatures;
    const i64 f2 = (idx[0] * 3) % kFeatures;
    const f32 w1 = ctx.Read(weights, std::vector<i64>{f1})[0];
    (void)w1;
    const f32 upd = value[0] + 1.0f;
    ctx.BufferUpdate(weights, std::vector<i64>{f1}, &upd);
    ctx.BufferUpdate(weights, std::vector<i64>{f2}, &upd);
  };

  auto loop = driver.Compile(spec, kernel, options);
  ASSERT_TRUE(loop.ok()) << loop.status();
  EXPECT_EQ(driver.PlanOf(*loop).form, ParallelForm::k1D);
  ASSERT_EQ(driver.PlanOf(*loop).placements.at(weights).scheme, PartitionScheme::kServer);

  ASSERT_TRUE(driver.Execute(*loop).ok());

  std::vector<f32> want(static_cast<size_t>(kFeatures), 0.0f);
  for (i64 s = 0; s < kSamples; ++s) {
    const f32 upd = static_cast<f32>(s % 7) + 1.0f;
    want[static_cast<size_t>(s % kFeatures)] += upd;
    want[static_cast<size_t>((s * 3) % kFeatures)] += upd;
  }
  const CellStore& w = driver.Cells(weights);
  for (i64 f = 0; f < kFeatures; ++f) {
    EXPECT_FLOAT_EQ(w.Get(f)[0], want[static_cast<size_t>(f)]) << "feature " << f;
  }
}

}  // namespace
}  // namespace orion
