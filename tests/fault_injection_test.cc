// Chaos tests: seeded fault injection (drop / duplicate / delay / crash)
// against the supervised runtime, and checkpoint-based recovery from worker
// loss (paper Sec. 4.3).
//
// Determinism contract: injected drop/duplicate/delay decisions are a pure
// function of (plan seed, link, per-link faultable sequence number), so two
// runs of the same program with the same plan inject the same faults. The
// global interleaving of *release* events depends on thread timing, so
// cross-run comparisons canonicalize the log to decision events per link.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "src/apps/lda.h"
#include "src/apps/sgd_mf.h"
#include "src/net/fault_injector.h"
#include "src/runtime/driver.h"
#include "src/runtime/protocol.h"

namespace orion {
namespace {

PassDone MakePassDone(i32 loop_id, i32 pass) {
  PassDone d;
  d.loop_id = loop_id;
  d.pass = pass;
  return d;
}

RatingsConfig SmallData() {
  RatingsConfig d;
  d.rows = 300;
  d.cols = 240;
  d.nnz = 12000;
  d.true_rank = 4;
  d.seed = 7;
  return d;
}

SupervisorConfig FastSupervision() {
  SupervisorConfig s;
  s.enabled = true;
  s.heartbeat_interval_seconds = 0.02;
  s.death_timeout_seconds = 2.0;
  s.retry_initial_seconds = 0.02;
  return s;
}

// Tests run as parallel ctest processes; each needs its own checkpoint dir.
std::string RecoveryDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/orion_fi_" + tag;
  std::filesystem::create_directories(dir);
  return dir;
}

Message ControlMsg(WorkerId from, WorkerId to, std::vector<u8> payload) {
  Message m;
  m.from = from;
  m.to = to;
  m.kind = MsgKind::kControl;
  m.payload = std::move(payload);
  return m;
}

// Decision events only (drop / duplicate / delay / crash), in per-link
// order. Release events are timing-dependent and excluded.
std::vector<FaultEvent> CanonicalEvents(std::vector<FaultEvent> events) {
  events.erase(std::remove_if(events.begin(), events.end(),
                              [](const FaultEvent& e) {
                                return e.kind == FaultEvent::Kind::kRelease;
                              }),
               events.end());
  std::sort(events.begin(), events.end(), [](const FaultEvent& a, const FaultEvent& b) {
    return std::make_tuple(a.from, a.to, a.link_seq, static_cast<int>(a.kind), a.pass,
                           a.step) < std::make_tuple(b.from, b.to, b.link_seq,
                                                     static_cast<int>(b.kind), b.pass,
                                                     b.step);
  });
  return events;
}

// ---- Injector unit tests ----

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_prob = 0.1;
  plan.dup_prob = 0.1;
  plan.delay_prob = 0.1;

  auto run = [&](u64 seed) {
    FaultPlan p = plan;
    p.seed = seed;
    FaultInjector inj(p);
    for (int pass = 0; pass < 50; ++pass) {
      for (WorkerId w = 0; w < 4; ++w) {
        inj.Process(ControlMsg(kMasterRank, w, StartPass{0, pass}.Encode()));
        inj.Process(ControlMsg(w, kMasterRank, MakePassDone(0, pass).Encode()));
      }
    }
    return inj.events();
  };

  const auto a = run(42);
  const auto b = run(42);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // single-threaded: the full log, releases included
  EXPECT_NE(run(43), a);
}

TEST(FaultInjector, OnlyEligibleMessagesAreFaulted) {
  FaultPlan plan;
  plan.drop_prob = 1.0;  // drop every eligible message
  plan.fault_barrier_msgs = false;
  FaultInjector inj(plan);

  // kControl kStartPass: eligible, dropped.
  EXPECT_TRUE(inj.Process(ControlMsg(kMasterRank, 0, StartPass{0, 0}.Encode())).empty());
  // kControl kGather: not in faultable_control_ops, passes through.
  EXPECT_EQ(inj.Process(ControlMsg(kMasterRank, 0, ArrayOp{ControlOp::kGather, 0}.Encode()))
                .size(),
            1u);
  // kBarrier with fault_barrier_msgs = false: passes through.
  Message barrier;
  barrier.from = 0;
  barrier.to = kMasterRank;
  barrier.kind = MsgKind::kBarrier;
  barrier.payload = BarrierMsg{}.Encode();
  EXPECT_EQ(inj.Process(barrier).size(), 1u);
  // Data plane is never eligible.
  Message data;
  data.from = kMasterRank;
  data.to = 1;
  data.kind = MsgKind::kPartitionData;
  EXPECT_EQ(inj.Process(data).size(), 1u);

  EXPECT_EQ(inj.stats().dropped, 1u);
}

TEST(FaultInjector, CrashPointsFireExactlyOnce) {
  FaultPlan plan;
  plan.crashes = {{/*rank=*/1, /*pass=*/3, /*step=*/-1}};
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.ShouldCrash(1, 2, -1));
  EXPECT_FALSE(inj.ShouldCrash(0, 3, -1));
  EXPECT_TRUE(inj.ShouldCrash(1, 3, -1));
  EXPECT_FALSE(inj.ShouldCrash(1, 3, -1));  // one-shot
  EXPECT_EQ(inj.stats().crashes_triggered, 1u);
}

TEST(FaultInjector, DuplicateDeliversTwice) {
  FaultPlan plan;
  plan.dup_prob = 1.0;
  FaultInjector inj(plan);
  const auto out = inj.Process(ControlMsg(0, kMasterRank, MakePassDone(0, 0).Encode()));
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(inj.stats().duplicated, 1u);
}

TEST(FaultInjector, DelayedMessageIsReleasedAfterLaterTraffic) {
  FaultPlan plan;
  plan.delay_prob = 1.0;
  plan.delay_release_after = 2;
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.Process(ControlMsg(0, kMasterRank, MakePassDone(0, 0).Encode())).empty());
  // Unfaulted traffic toward the same destination ages the holdback.
  Message data;
  data.from = 1;
  data.to = kMasterRank;
  data.kind = MsgKind::kParamUpdate;
  EXPECT_EQ(inj.Process(data).size(), 1u);
  const auto out = inj.Process(data);  // second send -> release
  ASSERT_EQ(out.size(), 2u);
  // The reordering: the triggering message first, the held one after it.
  EXPECT_EQ(out[0].kind, MsgKind::kParamUpdate);
  EXPECT_EQ(out[1].kind, MsgKind::kControl);
  EXPECT_EQ(inj.stats().released, 1u);
}

// ---- End-to-end chaos: SGD MF ----

// Message faults without crashes must not change the computation at all:
// every lost control message is retransmitted with identical content, and
// the data plane is never faulted, so the final model is bit-for-bit the
// model of a fault-free run.
TEST(FaultInjectionE2E, SgdMfBitForBitUnderMessageFaults) {
  auto data = GenerateRatings(SmallData());
  SgdMfConfig mf;
  mf.rank = 4;

  auto train = [&](const FaultPlan& plan, std::vector<f32>* w_out,
                   std::vector<f32>* h_out) {
    DriverConfig cfg;
    cfg.num_workers = 4;
    cfg.fault_plan = plan;
    cfg.supervisor = FastSupervision();
    Driver driver(cfg);
    SgdMfApp app(&driver, mf);
    ASSERT_TRUE(app.Init(data, 300, 240).ok());
    for (int p = 0; p < 5; ++p) {
      ASSERT_TRUE(app.RunPass().ok());
    }
    driver.MutableCells(app.w()).ForEachConst(
        [&](i64, const f32* v) { w_out->insert(w_out->end(), v, v + 4); });
    driver.MutableCells(app.h()).ForEachConst(
        [&](i64, const f32* v) { h_out->insert(h_out->end(), v, v + 4); });
    if (plan.HasMessageFaults()) {
      const RuntimeMetrics rm = driver.runtime_metrics();
      EXPECT_GT(rm.faults_dropped + rm.faults_duplicated + rm.faults_delayed, 0u);
      EXPECT_EQ(rm.workers_lost, 0u);
    }
  };

  std::vector<f32> w_clean, h_clean;
  train(FaultPlan{}, &w_clean, &h_clean);

  FaultPlan chaos;
  chaos.seed = 11;
  chaos.drop_prob = 0.05;
  chaos.dup_prob = 0.05;
  chaos.delay_prob = 0.05;
  std::vector<f32> w_faulty, h_faulty;
  train(chaos, &w_faulty, &h_faulty);

  EXPECT_EQ(w_clean, w_faulty);
  EXPECT_EQ(h_clean, h_faulty);
}

TEST(FaultInjectionE2E, SgdMfCrashRecoveryConvergesAndIsDeterministic) {
  auto data = GenerateRatings(SmallData());
  SgdMfConfig mf;
  mf.rank = 4;

  FaultPlan chaos;
  chaos.seed = 5;
  chaos.drop_prob = 0.05;  // <= 5% of control messages, per the fault model
  chaos.crashes = {{/*rank=*/1, /*pass=*/3, /*step=*/-1}};

  auto train = [&](f64* loss0, f64* loss_final, RuntimeMetrics* rm,
                   std::vector<FaultEvent>* events, size_t* live) {
    DriverConfig cfg;
    cfg.num_workers = 4;
    cfg.fault_plan = chaos;
    cfg.supervisor = FastSupervision();
    cfg.supervisor.death_timeout_seconds = 1.0;
    Driver driver(cfg);
    SgdMfApp app(&driver, mf);
    ASSERT_TRUE(app.Init(data, 300, 240).ok());
    driver.EnableRecovery({app.w(), app.h()}, RecoveryDir("crash_mf"),
                          /*every_n_passes=*/2);
    *loss0 = *app.EvalLoss();
    for (int p = 0; p < 8; ++p) {
      ASSERT_TRUE(app.RunPass().ok());
    }
    *loss_final = *app.EvalLoss();
    *rm = driver.runtime_metrics();
    *events = CanonicalEvents(driver.fault_events());
    *live = driver.live_ranks().size();
  };

  f64 loss0 = 0.0, loss_final = 0.0;
  RuntimeMetrics rm;
  std::vector<FaultEvent> events_a;
  size_t live = 0;
  train(&loss0, &loss_final, &rm, &events_a, &live);

  // The run absorbed one worker loss and still trained to convergence.
  EXPECT_EQ(rm.crashes_triggered, 1u);
  EXPECT_EQ(rm.workers_lost, 1u);
  EXPECT_EQ(rm.recoveries, 1u);
  EXPECT_GE(rm.checkpoints_written, 2u);  // baseline + at least one periodic
  EXPECT_GT(rm.recovery_seconds, 0.0);
  EXPECT_EQ(live, 3u);  // graceful degradation to N-1 executors
  EXPECT_LT(loss_final, 0.25 * loss0);

  // Same seed, same program -> the same injected-fault sequence.
  f64 l0 = 0.0, lf = 0.0;
  RuntimeMetrics rm2;
  std::vector<FaultEvent> events_b;
  size_t live2 = 0;
  train(&l0, &lf, &rm2, &events_b, &live2);
  EXPECT_FALSE(events_a.empty());
  EXPECT_EQ(events_a, events_b);
  EXPECT_EQ(rm2.workers_lost, 1u);
}

TEST(FaultInjectionE2E, OrderedWavefrontSurvivesBarrierFaultsAndCrash) {
  auto data = GenerateRatings(SmallData());
  SgdMfConfig mf;
  mf.rank = 4;
  mf.loop_options.ordered = true;  // wavefront schedule with step barriers

  FaultPlan chaos;
  chaos.seed = 21;
  chaos.drop_prob = 0.04;
  chaos.dup_prob = 0.03;
  chaos.fault_barrier_msgs = true;
  chaos.crashes = {{/*rank=*/2, /*pass=*/2, /*step=*/1}};  // mid-wavefront

  DriverConfig cfg;
  cfg.num_workers = 3;
  cfg.fault_plan = chaos;
  cfg.supervisor = FastSupervision();
  cfg.supervisor.death_timeout_seconds = 1.0;
  Driver driver(cfg);
  SgdMfApp app(&driver, mf);
  ASSERT_TRUE(app.Init(data, 300, 240).ok());
  ASSERT_TRUE(app.train_plan().ordered);
  driver.EnableRecovery({app.w(), app.h()}, RecoveryDir("wavefront_mf"),
                        /*every_n_passes=*/2);

  const f64 loss0 = *app.EvalLoss();
  for (int p = 0; p < 6; ++p) {
    ASSERT_TRUE(app.RunPass().ok());
  }
  EXPECT_LT(*app.EvalLoss(), 0.5 * loss0);
  const RuntimeMetrics rm = driver.runtime_metrics();
  EXPECT_EQ(rm.crashes_triggered, 1u);
  EXPECT_EQ(rm.recoveries, 1u);
  EXPECT_EQ(driver.live_ranks().size(), 2u);
}

TEST(FaultInjectionE2E, CrashWithoutRecoveryFailsTheExecute) {
  auto data = GenerateRatings(SmallData());
  SgdMfConfig mf;
  mf.rank = 4;

  FaultPlan chaos;
  chaos.crashes = {{/*rank=*/0, /*pass=*/1, /*step=*/-1}};

  DriverConfig cfg;
  cfg.num_workers = 3;
  cfg.fault_plan = chaos;
  cfg.supervisor = FastSupervision();
  cfg.supervisor.death_timeout_seconds = 0.5;
  Driver driver(cfg);
  SgdMfApp app(&driver, mf);
  ASSERT_TRUE(app.Init(data, 300, 240).ok());

  ASSERT_TRUE(app.RunPass().ok());            // pass 0 is clean
  const Status failed = app.RunPass();        // worker 0 crashes at pass 1
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("lost"), std::string::npos);
}

// ---- End-to-end chaos: LDA ----

// LDA's topic totals are replicated with bounded staleness (snapshot
// broadcast timing is wall-clock dependent), so no bit-for-bit claim —
// the run must complete under faults and still improve the model.
TEST(FaultInjectionE2E, LdaCompletesAndImprovesUnderMessageFaults) {
  CorpusConfig c;
  c.num_docs = 200;
  c.vocab = 300;
  auto corpus = GenerateCorpus(c);

  FaultPlan chaos;
  chaos.seed = 17;
  chaos.drop_prob = 0.05;
  chaos.dup_prob = 0.05;
  chaos.delay_prob = 0.05;

  DriverConfig cfg;
  cfg.num_workers = 4;
  cfg.fault_plan = chaos;
  cfg.supervisor = FastSupervision();
  Driver driver(cfg);
  LdaConfig lda;
  lda.num_topics = 10;
  LdaApp app(&driver, lda);
  ASSERT_TRUE(app.Init(corpus, c.num_docs, c.vocab).ok());

  const f64 ll0 = *app.EvalLogLikelihood();
  for (int p = 0; p < 5; ++p) {
    ASSERT_TRUE(app.RunPass().ok());
  }
  EXPECT_GT(*app.EvalLogLikelihood(), ll0);
  const RuntimeMetrics rm = driver.runtime_metrics();
  EXPECT_GT(rm.faults_dropped + rm.faults_duplicated + rm.faults_delayed, 0u);
  EXPECT_EQ(rm.workers_lost, 0u);
}

}  // namespace
}  // namespace orion
