// Sharded async parameter serving + depth-k prefetch ring: every
// configuration (ring depth k, shard count S, fault injection, per-key vs
// bulk request shape) must be *bit-for-bit* identical to fully synchronous
// inline serving — same reply bytes, same apply order, same f64 folds.
// Also covers the coalesced kPerKey metering identity: one wire message
// carrying K keys must charge the fabric exactly like K single-key messages.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <tuple>
#include <vector>

#include "src/apps/lda.h"
#include "src/common/rng.h"
#include "src/net/fault_injector.h"
#include "src/runtime/driver.h"
#include "src/runtime/param_server.h"
#include "src/runtime/protocol.h"

namespace orion {
namespace {

std::map<i64, std::vector<f32>> Snapshot(Driver* d, DistArrayId id) {
  std::map<i64, std::vector<f32>> out;
  const CellStore& c = d->Cells(id);
  c.ForEachConst([&](i64 key, const f32* v) {
    out[key].assign(v, v + c.value_dim());
  });
  return out;
}

::testing::AssertionResult BitIdentical(const std::map<i64, std::vector<f32>>& a,
                                        const std::map<i64, std::vector<f32>>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "cell counts differ: " << a.size() << " vs " << b.size();
  }
  for (const auto& [key, va] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      return ::testing::AssertionFailure() << "key " << key << " missing";
    }
    if (va.size() != it->second.size() ||
        std::memcmp(va.data(), it->second.data(), va.size() * sizeof(f32)) != 0) {
      return ::testing::AssertionFailure() << "key " << key << " differs bitwise";
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Rotation schedule + server-hosted table (non-aligned i+j subscript): the
// scenario where both the prefetch ring and the sharded server are hot.

struct RotationResult {
  std::map<i64, std::vector<f32>> out_r;
  std::map<i64, std::vector<f32>> out_c;
  f64 accum = 0.0;
  LoopMetrics last;
  double virtual_net_seconds = 0.0;  // summed over passes
  std::vector<FaultEvent> fault_events;
};

struct RotationOptions {
  bool overlap = true;
  int prefetch_depth = 2;
  bool async_serving = true;
  int shards = 4;
  PrefetchMode prefetch = PrefetchMode::kCached;
  FaultPlan fault_plan;
};

RotationResult RunRotationServer(const RotationOptions& opt) {
  constexpr i64 kRows = 24;
  constexpr i64 kCols = 24;
  constexpr int kPasses = 4;

  DriverConfig cfg;
  cfg.num_workers = 4;
  cfg.seed = 11;
  // Modeled-only link (no real-time charging): gives nonzero virtual cost so
  // the per-key metering comparison has something to compare, keeps tests fast.
  cfg.net.latency_us = 200.0;
  cfg.net.bandwidth_bps = 1e9;
  cfg.async_param_serving = opt.async_serving;
  cfg.param_server_shards = opt.shards;
  cfg.fault_plan = opt.fault_plan;
  if (cfg.fault_plan.Active()) {
    cfg.supervisor.enabled = true;
    cfg.supervisor.heartbeat_interval_seconds = 0.02;
    cfg.supervisor.retry_initial_seconds = 0.02;
  }
  Driver driver(cfg);

  auto data = driver.CreateDistArray("data", {kRows, kCols}, 1, Density::kSparse);
  auto out_r = driver.CreateDistArray("out_r", {kRows}, 2, Density::kDense);
  auto out_c = driver.CreateDistArray("out_c", {kCols}, 2, Density::kDense);
  auto table = driver.CreateDistArray("table", {kRows + kCols - 1}, 2, Density::kDense);
  {
    Rng rng(99);
    CellStore& cells = driver.MutableCells(data);
    for (i64 n = 0; n < 600; ++n) {
      const i64 i = static_cast<i64>(rng.NextBounded(static_cast<u64>(kRows)));
      const i64 j = static_cast<i64>(rng.NextBounded(static_cast<u64>(kCols)));
      *cells.GetOrCreate(i * kCols + j) = 1.0f + 0.25f * static_cast<f32>(n % 7);
    }
    driver.MapCells(table, [](i64 key, f32* v) {
      v[0] = 0.5f + 0.001f * static_cast<f32>(key);
      v[1] = 1.0f - 0.002f * static_cast<f32>(key);
    });
  }

  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {kRows, kCols};
  spec.AddAccess(out_r, "out_r", {Expr::LoopIndex(0)}, true);
  spec.AddAccess(out_c, "out_c", {Expr::LoopIndex(1)}, true);
  spec.AddAccess(table, "table", {Expr::Add(Expr::LoopIndex(0), Expr::LoopIndex(1))},
                 false);

  const int acc = driver.CreateAccumulator();
  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 k[1] = {idx[0] + idx[1]};
    const f32* t = ctx.Read(table, k);
    const f32 s = value[0] * t[0] + t[1];
    const i64 ki[1] = {idx[0]};
    const i64 kj[1] = {idx[1]};
    ctx.Mutate(out_r, ki)[0] += s;
    ctx.Mutate(out_r, ki)[1] += s * t[0];
    ctx.Mutate(out_c, kj)[0] += s;
    ctx.Mutate(out_c, kj)[1] += s * t[1];
    ctx.AccumulatorAdd(acc, static_cast<f64>(s));
  };

  ParallelForOptions options;
  options.prefetch = opt.prefetch;
  options.prefetch_depth = opt.prefetch_depth;
  options.overlap = opt.overlap;
  options.planner.replicate_threshold_floats = 0;  // force table -> kServer
  auto loop = driver.Compile(spec, kernel, options);
  EXPECT_TRUE(loop.ok()) << loop.status();
  EXPECT_EQ(driver.PlanOf(*loop).placements.at(table).scheme, PartitionScheme::kServer);

  RotationResult res;
  for (int p = 0; p < kPasses; ++p) {
    EXPECT_TRUE(driver.Execute(*loop).ok());
    res.virtual_net_seconds += driver.last_metrics().virtual_net_seconds;
  }
  res.last = driver.last_metrics();
  res.out_r = Snapshot(&driver, out_r);
  res.out_c = Snapshot(&driver, out_c);
  res.accum = driver.AccumulatorValue(acc);
  res.fault_events = driver.fault_events();
  return res;
}

::testing::AssertionResult SameResult(const RotationResult& a, const RotationResult& b) {
  auto r = BitIdentical(a.out_r, b.out_r);
  if (!r) {
    return r;
  }
  auto c = BitIdentical(a.out_c, b.out_c);
  if (!c) {
    return c;
  }
  if (a.accum != b.accum) {
    return ::testing::AssertionFailure() << "accumulators differ";
  }
  return ::testing::AssertionSuccess();
}

TEST(ParamServing, RotationDepthSweepBitForBit) {
  RotationOptions sync;
  sync.overlap = false;
  sync.async_serving = false;
  sync.prefetch_depth = 1;
  const RotationResult ref = RunRotationServer(sync);

  for (int depth : {1, 2, 4}) {
    RotationOptions o;
    o.prefetch_depth = depth;
    const RotationResult got = RunRotationServer(o);
    EXPECT_TRUE(SameResult(ref, got)) << "depth " << depth;
    EXPECT_LE(got.last.prefetch_ring_depth_used, depth);
    if (depth >= 2) {
      // Warm kCached key lists let the ring actually fill past 1.
      EXPECT_GE(got.last.prefetch_ring_depth_used, 2) << "depth " << depth;
    }
    // The sharded path ran and reported its work.
    EXPECT_GT(got.last.param_shard_queue_depth_max, 0);
    EXPECT_EQ(got.last.worker_reply_wait.size(), 4u);
    u64 awaits = 0;
    for (const WaitHistogram& h : got.last.worker_reply_wait) {
      awaits += h.total_count();
    }
    EXPECT_GT(awaits, 0u);
  }
}

TEST(ParamServing, ShardCountDoesNotChangeResults) {
  RotationOptions one;
  one.shards = 1;
  RotationOptions four;
  four.shards = 4;
  const RotationResult s1 = RunRotationServer(one);
  const RotationResult s4 = RunRotationServer(four);
  EXPECT_TRUE(SameResult(s1, s4));

  RotationOptions sync;
  sync.overlap = false;
  sync.async_serving = false;
  EXPECT_TRUE(SameResult(RunRotationServer(sync), s4));
}

TEST(ParamServing, ChaosWhileShardedServingActive) {
  RotationOptions clean;
  clean.overlap = false;
  clean.async_serving = false;
  const RotationResult ref = RunRotationServer(clean);

  RotationOptions chaos;
  chaos.prefetch_depth = 2;
  chaos.shards = 4;
  chaos.fault_plan.seed = 17;
  chaos.fault_plan.drop_prob = 0.05;
  chaos.fault_plan.dup_prob = 0.05;
  chaos.fault_plan.delay_prob = 0.05;
  const RotationResult a = RunRotationServer(chaos);
  EXPECT_TRUE(SameResult(ref, a));
  EXPECT_FALSE(a.fault_events.empty());

  // Decision events are a pure function of the plan seed: async replies and
  // shard threads must not perturb the injected sequence. Releases are
  // timing-dependent, so compare decisions only, canonically ordered.
  auto canonical = [](std::vector<FaultEvent> events) {
    events.erase(std::remove_if(events.begin(), events.end(),
                                [](const FaultEvent& e) {
                                  return e.kind == FaultEvent::Kind::kRelease;
                                }),
                 events.end());
    std::sort(events.begin(), events.end(),
              [](const FaultEvent& x, const FaultEvent& y) {
                return std::make_tuple(x.from, x.to, x.link_seq,
                                       static_cast<int>(x.kind)) <
                       std::make_tuple(y.from, y.to, y.link_seq,
                                       static_cast<int>(y.kind));
              });
    return events;
  };
  const RotationResult b = RunRotationServer(chaos);
  EXPECT_TRUE(SameResult(ref, b));
  EXPECT_EQ(canonical(a.fault_events), canonical(b.fault_events));
}

TEST(ParamServing, PerKeyMatchesBulkAndCostsMore) {
  RotationOptions bulk;
  bulk.prefetch = PrefetchMode::kBulk;
  RotationOptions perkey;
  perkey.prefetch = PrefetchMode::kPerKey;
  const RotationResult rb = RunRotationServer(bulk);
  const RotationResult rp = RunRotationServer(perkey);
  EXPECT_TRUE(SameResult(rb, rp));
  // Coalescing must not erase the modeled per-message cost of the storm.
  EXPECT_GT(rp.virtual_net_seconds, rb.virtual_net_seconds);
  EXPECT_GT(rp.last.messages_sent, rb.last.messages_sent);
}

// ---------------------------------------------------------------------------
// LDA with server-hosted topic totals: buffered server applies defer to pass
// end, the regime that makes deep prefetch legal in the first place.

void LdaDepthBitForBit(PrefetchMode prefetch) {
  CorpusConfig c;
  c.num_docs = 120;
  c.vocab = 200;
  c.true_topics = 5;
  c.doc_length = 25;
  c.seed = 23;
  auto corpus = GenerateCorpus(c);

  auto run = [&](bool overlap, bool async_serving, int depth) {
    DriverConfig cfg;
    cfg.num_workers = 4;
    cfg.seed = 3;
    cfg.async_param_serving = async_serving;
    auto driver = std::make_unique<Driver>(cfg);
    LdaConfig l;
    l.num_topics = 5;
    l.loop_options.overlap = overlap;
    l.loop_options.prefetch = prefetch;
    l.loop_options.prefetch_depth = depth;
    l.loop_options.planner.replicate_threshold_floats = 0;
    auto app = std::make_unique<LdaApp>(driver.get(), l);
    EXPECT_TRUE(app->Init(corpus, 120, 200).ok());
    EXPECT_EQ(app->train_plan().placements.at(app->topic_sum()).scheme,
              PartitionScheme::kServer);
    for (int p = 0; p < 3; ++p) {
      EXPECT_TRUE(app->RunPass().ok());
    }
    auto ll = app->EvalLogLikelihood();
    EXPECT_TRUE(ll.ok());
    return std::make_tuple(Snapshot(driver.get(), app->doc_topic()),
                           Snapshot(driver.get(), app->word_topic()),
                           Snapshot(driver.get(), app->topic_sum()), *ll);
  };

  auto [dt_sync, wt_sync, ts_sync, ll_sync] = run(false, false, 1);
  for (int depth : {1, 4}) {
    auto [dt, wt, ts, ll] = run(true, true, depth);
    EXPECT_TRUE(BitIdentical(dt_sync, dt)) << "depth " << depth;
    EXPECT_TRUE(BitIdentical(wt_sync, wt)) << "depth " << depth;
    EXPECT_TRUE(BitIdentical(ts_sync, ts)) << "depth " << depth;
    EXPECT_EQ(ll_sync, ll) << "depth " << depth;  // exact f64
  }
}

TEST(ParamServing, LdaBulkDepthBitForBit) { LdaDepthBitForBit(PrefetchMode::kBulk); }
TEST(ParamServing, LdaCachedDepthBitForBit) { LdaDepthBitForBit(PrefetchMode::kCached); }

// ---------------------------------------------------------------------------
// Coalesced kPerKey metering: one wire message carrying K keys must charge
// the fabric (messages, bytes, virtual seconds) exactly like the K single-key
// messages the storm used to send.

TEST(PerKeyMetering, CoalescedRequestChargesLikeStorm) {
  NetCostModel net;
  net.latency_us = 500.0;
  net.bandwidth_bps = 1e9;
  const std::vector<i64> keys = {3, 17, 42, 100, 255, 1023, 4096};

  Fabric storm(1, net);
  for (i64 key : keys) {
    ParamRequest req{7, 5, {key}};
    req.per_key = true;
    Message m;
    m.from = 0;
    m.to = kMasterRank;
    m.kind = MsgKind::kParamRequest;
    AttachParamRequest(&m, std::move(req), /*zero_copy=*/false);
    storm.Send(std::move(m));
  }

  Fabric coalesced(1, net);
  {
    ParamRequest req{7, 5, keys};
    req.per_key = true;
    Message m;
    m.from = 0;
    m.to = kMasterRank;
    m.kind = MsgKind::kParamRequest;
    MeterAsPerKeyRequests(&m, req);
    AttachParamRequest(&m, std::move(req), /*zero_copy=*/false);
    coalesced.Send(std::move(m));
  }

  const FabricStats a = storm.Stats();
  const FabricStats b = coalesced.Stats();
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_DOUBLE_EQ(a.virtual_net_seconds, b.virtual_net_seconds);
}

TEST(PerKeyMetering, CoalescedReplyChargesLikeStorm) {
  NetCostModel net;
  net.latency_us = 500.0;
  net.bandwidth_bps = 1e9;
  constexpr i32 kDim = 3;
  const std::vector<i64> keys = {2, 9, 31, 64, 77};

  CellStore master(kDim, CellStore::Layout::kHashed, 0);
  for (i64 key : keys) {
    f32* v = master.GetOrCreate(key);
    for (int d = 0; d < kDim; ++d) {
      v[d] = static_cast<f32>(key * 10 + d);
    }
  }

  Fabric storm(1, net);
  for (i64 key : keys) {
    ParamRequest req{4, 2, {key}};
    req.per_key = true;
    Message reply = BuildParamReply(req, master, kDim, /*zero_copy=*/false);
    reply.to = 0;
    storm.Send(std::move(reply));
  }

  Fabric coalesced(1, net);
  {
    ParamRequest req{4, 2, keys};
    req.per_key = true;
    Message reply = BuildParamReply(req, master, kDim, /*zero_copy=*/false);
    reply.to = 0;
    coalesced.Send(std::move(reply));
  }

  const FabricStats a = storm.Stats();
  const FabricStats b = coalesced.Stats();
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_DOUBLE_EQ(a.virtual_net_seconds, b.virtual_net_seconds);
}

TEST(PerKeyMetering, ParamRequestEncodedSizeMatchesEncode) {
  ParamRequest empty{1, 0, {}};
  EXPECT_EQ(empty.EncodedSize(), empty.Encode().size());

  ParamRequest bulk{2, 3, {1, 2, 3, 4, 5}};
  EXPECT_EQ(bulk.EncodedSize(), bulk.Encode().size());

  ParamRequest perkey{2, 3, {10, 20}};
  perkey.per_key = true;
  EXPECT_EQ(perkey.EncodedSize(), perkey.Encode().size());
  const ParamRequest decoded = ParamRequest::Decode(perkey.Encode());
  EXPECT_TRUE(decoded.per_key);
  EXPECT_EQ(decoded.keys, perkey.keys);
}

// BuildParamReply assembles hits in request-key order; the sharded path must
// reproduce those bytes exactly, so the shared helper is the ground truth.
TEST(PerKeyMetering, BuildParamReplyPreservesKeyOrder) {
  constexpr i32 kDim = 2;
  CellStore master(kDim, CellStore::Layout::kHashed, 0);
  for (i64 key : {5, 1, 9}) {
    f32* v = master.GetOrCreate(key);
    v[0] = static_cast<f32>(key);
    v[1] = static_cast<f32>(-key);
  }
  ParamRequest req{0, 0, {9, 4, 1, 5}};  // 4 misses
  Message reply = BuildParamReply(req, master, kDim, /*zero_copy=*/false);
  PartData pd = TakePart(reply);
  EXPECT_EQ(pd.cells.keys(), (std::vector<i64>{9, 1, 5}));  // request order, misses skipped
}

}  // namespace
}  // namespace orion
