// Subscript expression classification (paper Sec. 3.2: precise analysis for
// `loop_index ± constant`, conservative otherwise).
#include <gtest/gtest.h>

#include "src/ir/expr.h"

namespace orion {
namespace {

TEST(Expr, ConstantFolds) {
  auto e = Expr::Add(Expr::Const(3), Expr::Mul(Expr::Const(2), Expr::Const(5)));
  const Subscript s = ClassifySubscript(e);
  EXPECT_EQ(s.kind, SubscriptKind::kConstant);
  EXPECT_EQ(s.constant, 13);
}

TEST(Expr, PlainLoopIndex) {
  const Subscript s = ClassifySubscript(Expr::LoopIndex(2));
  EXPECT_EQ(s.kind, SubscriptKind::kLoopIndex);
  EXPECT_EQ(s.loop_dim, 2);
  EXPECT_EQ(s.constant, 0);
}

TEST(Expr, LoopIndexPlusConstant) {
  const Subscript s = ClassifySubscript(Expr::Add(Expr::LoopIndex(0), Expr::Const(4)));
  EXPECT_EQ(s.kind, SubscriptKind::kLoopIndex);
  EXPECT_EQ(s.loop_dim, 0);
  EXPECT_EQ(s.constant, 4);
}

TEST(Expr, ConstantMinusHandling) {
  const Subscript s = ClassifySubscript(Expr::Sub(Expr::LoopIndex(1), Expr::Const(2)));
  EXPECT_EQ(s.kind, SubscriptKind::kLoopIndex);
  EXPECT_EQ(s.loop_dim, 1);
  EXPECT_EQ(s.constant, -2);
}

TEST(Expr, IndexMinusItselfIsConstant) {
  // i - i folds to the constant 0.
  const Subscript s = ClassifySubscript(Expr::Sub(Expr::LoopIndex(0), Expr::LoopIndex(0)));
  EXPECT_EQ(s.kind, SubscriptKind::kConstant);
  EXPECT_EQ(s.constant, 0);
}

TEST(Expr, ScaledIndexIsConservative) {
  // 2 * i: not of the form index + const -> range.
  const Subscript s = ClassifySubscript(Expr::Mul(Expr::Const(2), Expr::LoopIndex(0)));
  EXPECT_EQ(s.kind, SubscriptKind::kRange);
}

TEST(Expr, TwoIndicesAreConservative) {
  const Subscript s = ClassifySubscript(Expr::Add(Expr::LoopIndex(0), Expr::LoopIndex(1)));
  EXPECT_EQ(s.kind, SubscriptKind::kRange);
}

TEST(Expr, IndexTimesIndexIsConservative) {
  const Subscript s = ClassifySubscript(Expr::Mul(Expr::LoopIndex(0), Expr::LoopIndex(1)));
  EXPECT_EQ(s.kind, SubscriptKind::kRange);
}

TEST(Expr, RuntimeValuePropagates) {
  const Subscript s =
      ClassifySubscript(Expr::Add(Expr::Runtime("feature"), Expr::Const(1)));
  EXPECT_EQ(s.kind, SubscriptKind::kRuntime);
}

TEST(Expr, RuntimeDominatesEverything) {
  const Subscript s = ClassifySubscript(
      Expr::Mul(Expr::LoopIndex(0), Expr::Runtime("v")));
  EXPECT_EQ(s.kind, SubscriptKind::kRuntime);
}

TEST(Expr, CancellingCoefficients) {
  // (i + 3) - i = 3.
  auto e = Expr::Sub(Expr::Add(Expr::LoopIndex(0), Expr::Const(3)), Expr::LoopIndex(0));
  const Subscript s = ClassifySubscript(e);
  EXPECT_EQ(s.kind, SubscriptKind::kConstant);
  EXPECT_EQ(s.constant, 3);
}

TEST(Expr, NestedAffine) {
  // ((i - 1) + (2 * 3)) = i + 5.
  auto e = Expr::Add(Expr::Sub(Expr::LoopIndex(0), Expr::Const(1)),
                     Expr::Mul(Expr::Const(2), Expr::Const(3)));
  const Subscript s = ClassifySubscript(e);
  EXPECT_EQ(s.kind, SubscriptKind::kLoopIndex);
  EXPECT_EQ(s.constant, 5);
}

TEST(Expr, ConstTimesIndexThenCancel) {
  // 2*i - i = i (coefficient 1 after cancellation).
  auto e = Expr::Sub(Expr::Mul(Expr::Const(2), Expr::LoopIndex(0)), Expr::LoopIndex(0));
  const Subscript s = ClassifySubscript(e);
  EXPECT_EQ(s.kind, SubscriptKind::kLoopIndex);
  EXPECT_EQ(s.loop_dim, 0);
}

TEST(Expr, ToStringSmoke) {
  auto e = Expr::Add(Expr::LoopIndex(0), Expr::Const(1));
  EXPECT_EQ(e->ToString(), "(i0 + 1)");
  EXPECT_EQ(ClassifySubscript(e).ToString(), "i0+1");
  EXPECT_EQ(Subscript::MakeRange().ToString(), ":");
  EXPECT_EQ(Subscript::MakeRuntime().ToString(), "?");
}

}  // namespace
}  // namespace orion
