// Span tracer: ring mechanics (wraparound, cross-thread merge, nesting,
// serialization), export format, critical-path attribution, and — most
// important — neutrality: enabling tracing must not change a single bit of
// any training result, across prefetch depths, shard counts and fault
// injection. Trace bytes ride PassDone, so this also exercises the
// payload-size independence of the fault injector's decisions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/common/trace.h"
#include "src/net/fault_injector.h"
#include "src/runtime/driver.h"
#include "src/runtime/protocol.h"

namespace orion {
namespace {

// Restores a clean global tracer state no matter how a test exits.
struct TracerGuard {
  TracerGuard() { trace::Reset(); }
  ~TracerGuard() {
    trace::SetEnabled(false);
    trace::SetThreadRank(kMasterRank);
    trace::SetThreadPass(-1);
    trace::SetThreadStep(-1);
    trace::SetRingCapacity(size_t{1} << 15);
    trace::Reset();
  }
};

TEST(Tracer, DisabledRecordsNothing) {
  TracerGuard guard;
  ASSERT_FALSE(trace::Enabled());
  {
    ORION_TRACE_SPAN(kExecutor, "noop");
  }
  trace::Emit(trace::Category::kExecutor, "noop", 1, 2);
  EXPECT_TRUE(trace::DrainAll().empty());
}

TEST(Tracer, SpanCarriesThreadContext) {
  TracerGuard guard;
  trace::SetEnabled(true);
  trace::SetThreadRank(3);
  trace::SetThreadPass(7);
  trace::SetThreadStep(2);
  {
    ORION_TRACE_SPAN(kExecutor, "work");
  }
  std::vector<trace::Span> spans = trace::DrainRank(3);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].rank, 3);
  EXPECT_EQ(spans[0].pass, 7);
  EXPECT_EQ(spans[0].step, 2);
  EXPECT_EQ(spans[0].category, static_cast<u16>(trace::Category::kExecutor));
  EXPECT_LE(spans[0].start_ns, spans[0].end_ns);
}

TEST(Tracer, RingWrapsOverwritingOldest) {
  TracerGuard guard;
  // Capacity applies to rings created after the call, so emit from a fresh
  // thread rather than this one (which may already own a full-size ring).
  trace::SetRingCapacity(4);
  trace::SetEnabled(true);
  const u64 dropped_before = trace::DroppedCount();
  std::thread t([] {
    trace::SetThreadRank(77);
    for (i64 i = 0; i < 10; ++i) {
      trace::Emit(trace::Category::kExecutor, "s", i * 10, i * 10 + 5);
    }
  });
  t.join();
  std::vector<trace::Span> spans = trace::DrainRank(77);
  ASSERT_EQ(spans.size(), 4u);
  // Oldest surviving record is #6; order is chronological.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].start_ns, static_cast<i64>((6 + i) * 10));
  }
  EXPECT_EQ(trace::DroppedCount() - dropped_before, 6u);
}

TEST(Tracer, DrainRankLeavesOtherRanksBuffered) {
  TracerGuard guard;
  trace::SetEnabled(true);
  trace::SetThreadRank(1);
  trace::Emit(trace::Category::kExecutor, "mine", 10, 20);
  trace::SetThreadRank(2);
  trace::Emit(trace::Category::kExecutor, "theirs", 30, 40);
  std::vector<trace::Span> one = trace::DrainRank(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].name, "mine");
  std::vector<trace::Span> rest = trace::DrainAll();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].name, "theirs");
}

TEST(Tracer, NestedSpansCloseInnerFirst) {
  TracerGuard guard;
  trace::SetEnabled(true);
  trace::SetThreadRank(5);
  {
    ORION_TRACE_SPAN(kExecutor, "outer");
    { ORION_TRACE_SPAN(kExecutor, "inner"); }
  }
  std::vector<trace::Span> spans = trace::DrainRank(5);
  ASSERT_EQ(spans.size(), 2u);
  // RAII order: inner destructs (and records) first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[1].end_ns, spans[0].end_ns);
  // The exporter sorts by start time, so the enclosing span comes first —
  // the nesting convention Perfetto expects for same-track events.
  const std::string json = trace::ChromeTraceJson(spans);
  EXPECT_LT(json.find("\"outer\""), json.find("\"inner\""));
}

TEST(Tracer, CrossThreadMergeIsChronological) {
  TracerGuard guard;
  trace::SetEnabled(true);
  // Two threads interleave synthetic timestamps; the merged drain must come
  // out per-thread chronological and the exporter globally start-sorted.
  std::thread a([] {
    trace::SetThreadRank(0);
    trace::Emit(trace::Category::kExecutor, "a0", 100, 150);
    trace::Emit(trace::Category::kExecutor, "a1", 300, 350);
  });
  std::thread b([] {
    trace::SetThreadRank(1);
    trace::Emit(trace::Category::kExecutor, "b0", 200, 250);
    trace::Emit(trace::Category::kExecutor, "b1", 400, 450);
  });
  a.join();
  b.join();
  std::vector<trace::Span> spans = trace::DrainAll();
  ASSERT_EQ(spans.size(), 4u);
  const std::string json = trace::ChromeTraceJson(spans);
  const size_t p0 = json.find("\"a0\"");
  const size_t p1 = json.find("\"b0\"");
  const size_t p2 = json.find("\"a1\"");
  const size_t p3 = json.find("\"b1\"");
  ASSERT_NE(p0, std::string::npos);
  EXPECT_LT(p0, p1);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
}

TEST(Tracer, SerializationRoundTrips) {
  TracerGuard guard;
  std::vector<trace::Span> in;
  trace::Span s;
  s.start_ns = 12345;
  s.end_ns = 67890;
  s.pass = 3;
  s.step = 9;
  s.rank = 2;
  s.tid = 11;
  s.category = static_cast<u16>(trace::Category::kParamServer);
  s.name = "shard_gather";
  in.push_back(s);
  s.name = "quoted \"name\" with\\slash";
  s.rank = kMasterRank;
  in.push_back(s);

  ByteWriter w;
  trace::SerializeSpans(in, &w);
  ByteReader r(w.bytes());
  std::vector<trace::Span> out = trace::DeserializeSpans(&r);
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].start_ns, in[i].start_ns);
    EXPECT_EQ(out[i].end_ns, in[i].end_ns);
    EXPECT_EQ(out[i].pass, in[i].pass);
    EXPECT_EQ(out[i].step, in[i].step);
    EXPECT_EQ(out[i].rank, in[i].rank);
    EXPECT_EQ(out[i].tid, in[i].tid);
    EXPECT_EQ(out[i].category, in[i].category);
    EXPECT_EQ(out[i].name, in[i].name);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(Tracer, ChromeJsonEscapesAndPids) {
  TracerGuard guard;
  trace::Span s;
  s.start_ns = 1000;
  s.end_ns = 2500;
  s.rank = kMasterRank;
  s.name = "has \"quotes\"";
  const std::string json = trace::ChromeTraceJson({s});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("has \\\"quotes\\\""), std::string::npos);
  // Master-side rank -1 maps to pid 0.
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Synthetic critical-path attribution: hand-built spans with known durations.

TEST(Tracer, CriticalPathAttributesKnownSpans) {
  TracerGuard guard;
  auto mk = [](trace::Category cat, const char* name, i64 s, i64 e, i32 rank, i64 pass) {
    trace::Span sp;
    sp.category = static_cast<u16>(cat);
    sp.name = name;
    sp.start_ns = s;
    sp.end_ns = e;
    sp.rank = rank;
    sp.pass = pass;
    return sp;
  };
  const i64 ms = 1000000;
  std::vector<trace::Span> spans;
  // Master pass window: [0, 10ms].
  spans.push_back(mk(trace::Category::kDriver, "pass", 0, 10 * ms, kMasterRank, 0));
  spans.push_back(mk(trace::Category::kDriver, "deferred_applies", 9 * ms, 10 * ms,
                     kMasterRank, 0));
  // Worker 0 is critical: pass span 1..9ms with 4ms compute, 2ms prefetch
  // wait, 1ms barrier.
  spans.push_back(mk(trace::Category::kExecutor, "pass", 1 * ms, 9 * ms, 0, 0));
  spans.push_back(mk(trace::Category::kExecutor, "compute", 1 * ms, 5 * ms, 0, 0));
  spans.push_back(mk(trace::Category::kExecutor, "prefetch_wait", 5 * ms, 7 * ms, 0, 0));
  spans.push_back(mk(trace::Category::kExecutor, "barrier", 8 * ms, 9 * ms, 0, 0));
  // Worker 1 finishes earlier — not critical.
  spans.push_back(mk(trace::Category::kExecutor, "pass", 1 * ms, 5 * ms, 1, 0));
  spans.push_back(mk(trace::Category::kExecutor, "compute", 1 * ms, 5 * ms, 1, 0));
  // Server work overlaps worker time; informational only.
  spans.push_back(mk(trace::Category::kParamServer, "shard_gather", 2 * ms, 3 * ms,
                     kMasterRank, -1));

  std::vector<trace::PassBreakdown> passes = trace::AnalyzeCriticalPath(spans);
  ASSERT_EQ(passes.size(), 1u);
  const trace::PassBreakdown& p = passes[0];
  EXPECT_EQ(p.pass, 0);
  EXPECT_EQ(p.critical_rank, 0);
  EXPECT_NEAR(p.wall_seconds, 0.010, 1e-9);
  EXPECT_NEAR(p.compute_seconds, 0.004, 1e-9);
  EXPECT_NEAR(p.prefetch_wait_seconds, 0.002, 1e-9);
  EXPECT_NEAR(p.barrier_seconds, 0.001, 1e-9);
  EXPECT_NEAR(p.master_apply_seconds, 0.001, 1e-9);
  EXPECT_NEAR(p.param_serve_seconds, 0.001, 1e-9);
  EXPECT_NEAR(p.Sum(), p.wall_seconds, 1e-9);

  const std::string table = trace::FormatCriticalPathTable(passes);
  EXPECT_NE(table.find("compute"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: rotation schedule + server-hosted table, the same harness the
// param-serving suite uses, with a probe hook to inspect the live driver.

struct RotationResult {
  std::map<i64, std::vector<f32>> out_r;
  std::map<i64, std::vector<f32>> out_c;
  f64 accum = 0.0;
  std::vector<FaultEvent> fault_events;
};

struct RotationOptions {
  int prefetch_depth = 2;
  bool async_serving = true;
  int shards = 4;
  bool overlap = true;
  FaultPlan fault_plan;
};

std::map<i64, std::vector<f32>> Snapshot(Driver* d, DistArrayId id) {
  std::map<i64, std::vector<f32>> out;
  const CellStore& c = d->Cells(id);
  c.ForEachConst([&](i64 key, const f32* v) { out[key].assign(v, v + c.value_dim()); });
  return out;
}

::testing::AssertionResult BitIdentical(const std::map<i64, std::vector<f32>>& a,
                                        const std::map<i64, std::vector<f32>>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "cell counts differ: " << a.size() << " vs " << b.size();
  }
  for (const auto& [key, va] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      return ::testing::AssertionFailure() << "key " << key << " missing";
    }
    if (va.size() != it->second.size() ||
        std::memcmp(va.data(), it->second.data(), va.size() * sizeof(f32)) != 0) {
      return ::testing::AssertionFailure() << "key " << key << " differs bitwise";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult SameResult(const RotationResult& a, const RotationResult& b) {
  auto r = BitIdentical(a.out_r, b.out_r);
  if (!r) {
    return r;
  }
  auto c = BitIdentical(a.out_c, b.out_c);
  if (!c) {
    return c;
  }
  if (a.accum != b.accum) {
    return ::testing::AssertionFailure() << "accumulators differ";
  }
  return ::testing::AssertionSuccess();
}

// `probe` runs against the live driver after the last pass, before results
// are snapshotted — the hook through which traced runs dump and analyze.
RotationResult RunRotationServer(const RotationOptions& opt,
                                 const std::function<void(Driver&)>& probe = nullptr) {
  constexpr i64 kRows = 24;
  constexpr i64 kCols = 24;
  constexpr int kPasses = 4;

  DriverConfig cfg;
  cfg.num_workers = 4;
  cfg.seed = 11;
  cfg.net.latency_us = 200.0;
  cfg.net.bandwidth_bps = 1e9;
  cfg.async_param_serving = opt.async_serving;
  cfg.param_server_shards = opt.shards;
  cfg.fault_plan = opt.fault_plan;
  if (cfg.fault_plan.Active()) {
    cfg.supervisor.enabled = true;
    cfg.supervisor.heartbeat_interval_seconds = 0.02;
    cfg.supervisor.retry_initial_seconds = 0.02;
  }
  Driver driver(cfg);

  auto data = driver.CreateDistArray("data", {kRows, kCols}, 1, Density::kSparse);
  auto out_r = driver.CreateDistArray("out_r", {kRows}, 2, Density::kDense);
  auto out_c = driver.CreateDistArray("out_c", {kCols}, 2, Density::kDense);
  auto table = driver.CreateDistArray("table", {kRows + kCols - 1}, 2, Density::kDense);
  {
    Rng rng(99);
    CellStore& cells = driver.MutableCells(data);
    for (i64 n = 0; n < 600; ++n) {
      const i64 i = static_cast<i64>(rng.NextBounded(static_cast<u64>(kRows)));
      const i64 j = static_cast<i64>(rng.NextBounded(static_cast<u64>(kCols)));
      *cells.GetOrCreate(i * kCols + j) = 1.0f + 0.25f * static_cast<f32>(n % 7);
    }
    driver.MapCells(table, [](i64 key, f32* v) {
      v[0] = 0.5f + 0.001f * static_cast<f32>(key);
      v[1] = 1.0f - 0.002f * static_cast<f32>(key);
    });
  }

  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {kRows, kCols};
  spec.AddAccess(out_r, "out_r", {Expr::LoopIndex(0)}, true);
  spec.AddAccess(out_c, "out_c", {Expr::LoopIndex(1)}, true);
  spec.AddAccess(table, "table", {Expr::Add(Expr::LoopIndex(0), Expr::LoopIndex(1))},
                 false);

  const int acc = driver.CreateAccumulator();
  LoopKernel kernel = [=](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 k[1] = {idx[0] + idx[1]};
    const f32* t = ctx.Read(table, k);
    const f32 s = value[0] * t[0] + t[1];
    const i64 ki[1] = {idx[0]};
    const i64 kj[1] = {idx[1]};
    ctx.Mutate(out_r, ki)[0] += s;
    ctx.Mutate(out_r, ki)[1] += s * t[0];
    ctx.Mutate(out_c, kj)[0] += s;
    ctx.Mutate(out_c, kj)[1] += s * t[1];
    ctx.AccumulatorAdd(acc, static_cast<f64>(s));
  };

  ParallelForOptions options;
  options.prefetch = PrefetchMode::kCached;
  options.prefetch_depth = opt.prefetch_depth;
  options.overlap = opt.overlap;
  options.planner.replicate_threshold_floats = 0;  // force table -> kServer
  auto loop = driver.Compile(spec, kernel, options);
  EXPECT_TRUE(loop.ok()) << loop.status();

  RotationResult res;
  for (int p = 0; p < kPasses; ++p) {
    EXPECT_TRUE(driver.Execute(*loop).ok());
  }
  if (probe) {
    probe(driver);
  }
  res.out_r = Snapshot(&driver, out_r);
  res.out_c = Snapshot(&driver, out_c);
  res.accum = driver.AccumulatorValue(acc);
  res.fault_events = driver.fault_events();
  return res;
}

RotationResult RunTraced(const RotationOptions& opt,
                         const std::function<void(Driver&)>& probe = nullptr) {
  TracerGuard guard;
  trace::SetEnabled(true);
  return RunRotationServer(opt, probe);
}

TEST(TracerNeutrality, DepthAndShardMatrixBitForBit) {
  RotationOptions sync;
  sync.overlap = false;
  sync.async_serving = false;
  sync.prefetch_depth = 1;
  const RotationResult ref = RunRotationServer(sync);

  for (int depth : {1, 2, 4}) {
    for (int shards : {1, 4}) {
      RotationOptions o;
      o.prefetch_depth = depth;
      o.shards = shards;
      const RotationResult untraced = RunRotationServer(o);
      const RotationResult traced = RunTraced(o);
      EXPECT_TRUE(SameResult(ref, untraced)) << "depth " << depth << " shards " << shards;
      EXPECT_TRUE(SameResult(untraced, traced))
          << "tracing changed results at depth " << depth << " shards " << shards;
    }
  }
}

TEST(TracerNeutrality, ChaosRunBitForBit) {
  RotationOptions chaos;
  chaos.prefetch_depth = 2;
  chaos.shards = 4;
  chaos.fault_plan.seed = 17;
  chaos.fault_plan.drop_prob = 0.05;
  chaos.fault_plan.dup_prob = 0.05;
  chaos.fault_plan.delay_prob = 0.05;

  const RotationResult untraced = RunRotationServer(chaos);
  const RotationResult traced = RunTraced(chaos);
  EXPECT_TRUE(SameResult(untraced, traced)) << "tracing changed chaos-run results";
  EXPECT_FALSE(traced.fault_events.empty());
}

TEST(TracerAcceptance, TracedRunExportsClusterTimeline) {
  const std::string path = ::testing::TempDir() + "/orion_trace_test.json";
  std::vector<trace::Span> collected;
  std::string report;
  std::vector<trace::PassBreakdown> passes;

  RotationOptions o;
  o.prefetch_depth = 2;
  o.shards = 4;
  RunTraced(o, [&](Driver& driver) {
    ASSERT_TRUE(driver.DumpTrace(path).ok());
    collected = driver.CollectTrace();
    passes = trace::AnalyzeCriticalPath(collected);
    report = driver.CriticalPathReport();
  });

  // Spans arrived from the master, from >= 2 distinct workers, and from the
  // ParamServer pool.
  bool has_driver = false;
  bool has_server = false;
  std::vector<i32> worker_ranks;
  for (const trace::Span& s : collected) {
    const auto cat = static_cast<trace::Category>(s.category);
    if (cat == trace::Category::kDriver) {
      has_driver = true;
    }
    if (cat == trace::Category::kParamServer) {
      has_server = true;
    }
    if (cat == trace::Category::kExecutor && s.rank >= 0) {
      worker_ranks.push_back(s.rank);
    }
  }
  std::sort(worker_ranks.begin(), worker_ranks.end());
  worker_ranks.erase(std::unique(worker_ranks.begin(), worker_ranks.end()),
                     worker_ranks.end());
  EXPECT_TRUE(has_driver);
  EXPECT_TRUE(has_server);
  EXPECT_GE(worker_ranks.size(), 2u);

  // Dumped file is Chrome trace JSON with master + >= 2 worker processes.
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"driver\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"executor\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"param_server\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  std::remove(path.c_str());

  // Critical-path attribution: one breakdown per pass, buckets sum to the
  // master-observed wall time (5% tolerance), nonzero compute on the
  // critical worker.
  ASSERT_EQ(passes.size(), 4u);
  for (const trace::PassBreakdown& p : passes) {
    EXPECT_GE(p.critical_rank, 0) << "pass " << p.pass;
    EXPECT_GT(p.wall_seconds, 0.0);
    EXPECT_GT(p.compute_seconds, 0.0) << "pass " << p.pass;
    EXPECT_NEAR(p.Sum(), p.wall_seconds, 0.05 * p.wall_seconds) << "pass " << p.pass;
  }
  EXPECT_NE(report.find("compute"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
}

}  // namespace
}  // namespace orion
