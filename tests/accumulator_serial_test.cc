// Accumulators with custom reduce operators, the serial fallback executor,
// and auto-checkpointing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/runtime/driver.h"

namespace orion {
namespace {

DistArrayId FillLine(Driver* driver, i64 n) {
  auto data = driver->CreateDistArray("data", {n}, 1, Density::kSparse);
  CellStore& cells = driver->MutableCells(data);
  for (i64 i = 0; i < n; ++i) {
    *cells.GetOrCreate(i) = static_cast<f32>((i * 37) % 101);
  }
  return data;
}

TEST(Accumulators, MinAndMaxOps) {
  DriverConfig cfg;
  cfg.num_workers = 4;
  Driver driver(cfg);
  auto data = FillLine(&driver, 200);
  int acc_min = driver.CreateAccumulator(AccumOp::kMin);
  int acc_max = driver.CreateAccumulator(AccumOp::kMax);
  int acc_sum = driver.CreateAccumulator(AccumOp::kSum);

  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {200};
  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    ctx.AccumulatorAdd(acc_min, value[0]);
    ctx.AccumulatorAdd(acc_max, value[0]);
    ctx.AccumulatorAdd(acc_sum, value[0]);
  };
  auto loop = driver.Compile(spec, kernel, {});
  ASSERT_TRUE(loop.ok()) << loop.status();
  ASSERT_TRUE(driver.Execute(*loop).ok());

  f64 want_min = 1e300;
  f64 want_max = -1e300;
  f64 want_sum = 0.0;
  for (i64 i = 0; i < 200; ++i) {
    const f64 v = static_cast<f64>((i * 37) % 101);
    want_min = std::min(want_min, v);
    want_max = std::max(want_max, v);
    want_sum += v;
  }
  EXPECT_DOUBLE_EQ(driver.AccumulatorValue(acc_min), want_min);
  EXPECT_DOUBLE_EQ(driver.AccumulatorValue(acc_max), want_max);
  EXPECT_DOUBLE_EQ(driver.AccumulatorValue(acc_sum), want_sum);

  driver.ResetAccumulator(acc_min);
  EXPECT_EQ(driver.AccumulatorValue(acc_min), std::numeric_limits<f64>::infinity());
}

TEST(SerialFallback, MatchesParallelExecution) {
  const i64 kRows = 30;
  const i64 kCols = 20;
  auto run = [&](bool serial) {
    DriverConfig cfg;
    cfg.num_workers = 3;
    Driver driver(cfg);
    auto data = driver.CreateDistArray("data", {kRows, kCols}, 1, Density::kSparse);
    auto sums = driver.CreateDistArray("sums", {kRows}, 1, Density::kDense);
    {
      CellStore& cells = driver.MutableCells(data);
      for (i64 i = 0; i < kRows; ++i) {
        for (i64 j = i % 2; j < kCols; j += 2) {
          *cells.GetOrCreate(i * kCols + j) = static_cast<f32>(i + j);
        }
      }
    }
    int acc = driver.CreateAccumulator();
    LoopSpec spec;
    spec.iter_space = data;
    spec.iter_extents = {kRows, kCols};
    spec.AddAccess(sums, "sums", {Expr::LoopIndex(0)}, true);
    LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
      const i64 k[1] = {idx[0]};
      ctx.Mutate(sums, k)[0] += value[0];
      ctx.AccumulatorAdd(acc, value[0]);
    };
    if (serial) {
      EXPECT_TRUE(driver.ExecuteSerial(spec, kernel).ok());
    } else {
      auto loop = driver.Compile(spec, kernel, {});
      EXPECT_TRUE(loop.ok());
      EXPECT_TRUE(driver.Execute(*loop).ok());
    }
    std::vector<f32> out(static_cast<size_t>(kRows));
    for (i64 i = 0; i < kRows; ++i) {
      out[static_cast<size_t>(i)] = driver.Cells(sums).Get(i)[0];
    }
    return std::make_pair(out, driver.AccumulatorValue(acc));
  };

  const auto [serial_out, serial_acc] = run(true);
  const auto [parallel_out, parallel_acc] = run(false);
  EXPECT_EQ(serial_out, parallel_out);
  EXPECT_DOUBLE_EQ(serial_acc, parallel_acc);
}

TEST(SerialFallback, RunsLoopsTheAnalysisRejects) {
  // Unbuffered runtime-subscripted write: Compile fails (kSerial), but
  // ExecuteSerial runs it fine.
  DriverConfig cfg;
  cfg.num_workers = 2;
  Driver driver(cfg);
  auto data = FillLine(&driver, 50);
  auto table = driver.CreateDistArray("table", {101}, 1, Density::kDense);

  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {50};
  spec.AddAccess(table, "table", {Expr::Runtime("hash")}, false);
  spec.AddAccess(table, "table", {Expr::Runtime("hash")}, true);
  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 k[1] = {static_cast<i64>(value[0])};
    ctx.Mutate(table, k)[0] += 1.0f;
  };
  auto loop = driver.Compile(spec, kernel, {});
  ASSERT_FALSE(loop.ok());
  EXPECT_EQ(loop.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(driver.ExecuteSerial(spec, kernel).ok());
  f64 total = 0.0;
  driver.MutableCells(table).ForEach([&](i64, f32* v) { total += v[0]; });
  EXPECT_DOUBLE_EQ(total, 50.0);
}

TEST(AutoCheckpoint, WritesEveryNPasses) {
  DriverConfig cfg;
  cfg.num_workers = 2;
  Driver driver(cfg);
  auto data = FillLine(&driver, 40);
  auto sums = driver.CreateDistArray("sums", {40}, 1, Density::kDense);
  LoopSpec spec;
  spec.iter_space = data;
  spec.iter_extents = {40};
  spec.AddAccess(sums, "sums", {Expr::LoopIndex(0)}, true);
  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 k[1] = {idx[0]};
    ctx.Mutate(sums, k)[0] += value[0];
  };
  auto loop = driver.Compile(spec, kernel, {});
  ASSERT_TRUE(loop.ok());

  const std::string dir = ::testing::TempDir();
  driver.AutoCheckpoint({sums}, dir, /*every_n_passes=*/2);
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(driver.Execute(*loop).ok());
  }
  // Checkpoints at pass counters 2 and 4.
  auto exists = [](const std::string& path) {
    std::ifstream in(path);
    return static_cast<bool>(in);
  };
  int found = 0;
  for (int pass = 1; pass <= 10; ++pass) {
    if (exists(dir + "/sums." + std::to_string(pass) + ".ckpt")) {
      ++found;
      auto restored = CheckpointRead(dir + "/sums." + std::to_string(pass) + ".ckpt");
      EXPECT_TRUE(restored.ok());
      std::remove((dir + "/sums." + std::to_string(pass) + ".ckpt").c_str());
    }
  }
  EXPECT_EQ(found, 2);
}

}  // namespace
}  // namespace orion
