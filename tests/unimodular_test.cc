// Unimodular transformation search (paper Sec. 4.3) — algebra, search
// outcomes, and a property sweep: any found transform really carries every
// dependence on the outer loop and is invertible over the integers.
#include <gtest/gtest.h>

#include "src/analysis/unimodular.h"
#include "src/common/rng.h"

namespace orion {
namespace {

DepVec V(i64 a, i64 b) {
  DepVec d(2);
  d[0] = DepEntry::Value(a);
  d[1] = DepEntry::Value(b);
  return d;
}

TEST(Unimodular, TransformAlgebra) {
  const Unimodular2x2 skew{1, 1, 0, 1};
  const DepVec d = V(0, 1);
  const DepVec t = TransformDepVec(skew, d);
  EXPECT_EQ(t[0], DepEntry::Value(1));
  EXPECT_EQ(t[1], DepEntry::Value(1));
}

TEST(Unimodular, InfinityArithmetic) {
  const Unimodular2x2 skew{1, 1, 0, 1};
  DepVec d(2);
  d[0] = DepEntry::Value(2);
  d[1] = DepEntry::PosInf();
  const DepVec t = TransformDepVec(skew, d);
  EXPECT_EQ(t[0], DepEntry::PosInf());  // 2 + inf
  EXPECT_EQ(t[1], DepEntry::PosInf());
}

TEST(Unimodular, NegativeCoefficientFlipsInfinity) {
  const Unimodular2x2 rev{-1, 0, 0, 1};
  DepVec d(2);
  d[0] = DepEntry::PosInf();
  d[1] = DepEntry::Value(0);
  const DepVec t = TransformDepVec(rev, d);
  EXPECT_EQ(t[0], DepEntry::NegInf());
}

TEST(Unimodular, PosPlusNegInfIsAny) {
  const Unimodular2x2 sum{1, 1, 0, 1};
  DepVec d(2);
  d[0] = DepEntry::PosInf();
  d[1] = DepEntry::NegInf();
  const DepVec t = TransformDepVec(sum, d);
  EXPECT_EQ(t[0], DepEntry::Any());
}

TEST(Unimodular, IdentityPreferredWhenItWorks) {
  // All deps already carried by the outer loop.
  auto t = FindOuterCarryingTransform({V(1, 1), V(2, -1)});
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->IsIdentity());
}

TEST(Unimodular, StencilNeedsSkew) {
  auto t = FindOuterCarryingTransform({V(1, 0), V(0, 1)});
  ASSERT_TRUE(t.has_value());
  EXPECT_FALSE(t->IsIdentity());
  for (const auto& d : {V(1, 0), V(0, 1)}) {
    EXPECT_TRUE(FirstComponentPositive(TransformDepVec(*t, d)));
  }
}

TEST(Unimodular, InterchangeCase) {
  // Only dep (0, 1): inner-carried; interchange (or skew) fixes it.
  auto t = FindOuterCarryingTransform({V(0, 1)});
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(FirstComponentPositive(TransformDepVec(*t, V(0, 1))));
}

TEST(Unimodular, AnyEntryRejected) {
  DepVec d(2);
  d[0] = DepEntry::Value(1);
  d[1] = DepEntry::Any();
  EXPECT_FALSE(FindOuterCarryingTransform({d}).has_value());
}

TEST(Unimodular, NegInfEntryRejected) {
  DepVec d(2);
  d[0] = DepEntry::Value(1);
  d[1] = DepEntry::NegInf();
  EXPECT_FALSE(FindOuterCarryingTransform({d}).has_value());
}

TEST(Unimodular, PosInfEntriesAccepted) {
  DepVec d(2);
  d[0] = DepEntry::Value(0);
  d[1] = DepEntry::PosInf();
  auto t = FindOuterCarryingTransform({d});
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(FirstComponentPositive(TransformDepVec(*t, d)));
}

TEST(Unimodular, ThreeDeepRejected) {
  DepVec d(3);
  d[0] = DepEntry::Value(1);
  d[1] = DepEntry::Value(0);
  d[2] = DepEntry::Value(0);
  EXPECT_FALSE(FindOuterCarryingTransform({d}).has_value());
}

TEST(Unimodular, InverseRoundtrip) {
  for (const Unimodular2x2& t :
       {Unimodular2x2{1, 1, 0, 1}, Unimodular2x2{0, 1, 1, 0}, Unimodular2x2{2, 1, 1, 1},
        Unimodular2x2{-1, 0, 0, 1}, Unimodular2x2{3, 2, 1, 1}}) {
    const Unimodular2x2 inv = InverseOf(t);
    for (i64 p0 : {-3, 0, 7}) {
      for (i64 p1 : {-2, 0, 5}) {
        auto [q0, q1] = t.Apply(p0, p1);
        auto [r0, r1] = inv.Apply(q0, q1);
        EXPECT_EQ(r0, p0);
        EXPECT_EQ(r1, p1);
      }
    }
  }
}

// Property sweep: random finite dependence sets (lexicographically positive)
// — whenever a transform is found, it must carry every vector on the outer
// loop; and the transform must be unimodular.
class UnimodularPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(UnimodularPropertyTest, FoundTransformsAreValid) {
  Rng rng(static_cast<u64>(GetParam()) * 7919 + 3);
  const int num_deps = 1 + static_cast<int>(rng.NextBounded(4));
  std::vector<DepVec> deps;
  for (int i = 0; i < num_deps; ++i) {
    DepVec d(2);
    d[0] = DepEntry::Value(static_cast<i64>(rng.NextBounded(7)) - 3);
    d[1] = DepEntry::Value(static_cast<i64>(rng.NextBounded(7)) - 3);
    if (!d.CorrectLexPositive()) {
      continue;  // all-zero: not loop-carried
    }
    deps.push_back(d);
  }
  auto t = FindOuterCarryingTransform(deps);
  if (!t.has_value()) {
    return;  // nothing to check; search may legitimately fail
  }
  EXPECT_TRUE(t->Det() == 1 || t->Det() == -1);
  for (const auto& d : deps) {
    EXPECT_TRUE(FirstComponentPositive(TransformDepVec(*t, d)))
        << "T=" << t->ToString() << " d=" << d.ToString();
  }
  // The inverse must also be integral and round-trip.
  const Unimodular2x2 inv = InverseOf(*t);
  auto [q0, q1] = t->Apply(11, -4);
  auto [r0, r1] = inv.Apply(q0, q1);
  EXPECT_EQ(r0, 11);
  EXPECT_EQ(r1, -4);
}

INSTANTIATE_TEST_SUITE_P(RandomDeps, UnimodularPropertyTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace orion
