// Lazy DistArray construction (text_file + fused maps + materialize) and
// eager groupBy (paper Sec. 3.1).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/runtime/driver.h"

namespace orion {
namespace {

std::string WriteTempFile(const std::string& name, const std::string& contents) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(Transforms, TextFileMaterializesRecords) {
  const std::string path = WriteTempFile("ratings.csv",
                                         "# user,item,rating\n"
                                         "0,0,4.0\n"
                                         "1,2,3.5\n"
                                         "2,1,5.0\n");
  DriverConfig cfg;
  cfg.num_workers = 2;
  Driver driver(cfg);
  auto id = driver.Materialize("ratings", {4, 4}, 1, Density::kSparse,
                               ArrayRecipe::TextFile(path, MakeDelimitedParser(2, 1)));
  ASSERT_TRUE(id.ok()) << id.status();
  const CellStore& cells = driver.Cells(*id);
  EXPECT_EQ(cells.NumCells(), 3);
  EXPECT_FLOAT_EQ(cells.Get(0 * 4 + 0)[0], 4.0f);
  EXPECT_FLOAT_EQ(cells.Get(1 * 4 + 2)[0], 3.5f);
  EXPECT_FLOAT_EQ(cells.Get(2 * 4 + 1)[0], 5.0f);
  std::remove(path.c_str());
}

TEST(Transforms, MapsFuseInOrder) {
  const std::string path = WriteTempFile("vals.txt", "0 1.0\n1 2.0\n2 3.0\n");
  DriverConfig cfg;
  cfg.num_workers = 2;
  Driver driver(cfg);
  // Two recorded maps: double the value, then shift the index by +1. Both
  // must run, in order, in the single materialization pass.
  auto recipe = ArrayRecipe::TextFile(path, MakeDelimitedParser(1, 1))
                    .MapValues([](std::vector<f32>* v) { (*v)[0] *= 2.0f; })
                    .Map([](IndexVec* idx, std::vector<f32>*) { (*idx)[0] += 1; });
  auto id = driver.Materialize("vals", {5}, 1, Density::kSparse, std::move(recipe));
  ASSERT_TRUE(id.ok()) << id.status();
  const CellStore& cells = driver.Cells(*id);
  EXPECT_EQ(cells.Get(0), nullptr);
  EXPECT_FLOAT_EQ(cells.Get(1)[0], 2.0f);
  EXPECT_FLOAT_EQ(cells.Get(3)[0], 6.0f);
  std::remove(path.c_str());
}

TEST(Transforms, OutOfBoundsRecordFails) {
  const std::string path = WriteTempFile("bad.txt", "9 9 1.0\n");
  DriverConfig cfg;
  cfg.num_workers = 1;
  Driver driver(cfg);
  auto id = driver.Materialize("bad", {3, 3}, 1, Density::kSparse,
                               ArrayRecipe::TextFile(path, MakeDelimitedParser(2, 1)));
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(Transforms, MissingFileFails) {
  DriverConfig cfg;
  cfg.num_workers = 1;
  Driver driver(cfg);
  auto id = driver.Materialize(
      "x", {3}, 1, Density::kSparse,
      ArrayRecipe::TextFile("/does/not/exist.txt", MakeDelimitedParser(1, 1)));
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kIoError);
}

TEST(Transforms, MalformedLinesSkippedByParser) {
  const std::string path = WriteTempFile("mixed.txt",
                                         "% matrix market header\n"
                                         "0 0 1.5\n"
                                         "oops not a record\n"
                                         "1 1 2.5\n");
  DriverConfig cfg;
  cfg.num_workers = 1;
  Driver driver(cfg);
  auto id = driver.Materialize("m", {2, 2}, 1, Density::kSparse,
                               ArrayRecipe::TextFile(path, MakeDelimitedParser(2, 1)));
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(driver.Cells(*id).NumCells(), 2);
  std::remove(path.c_str());
}

TEST(Transforms, GroupByDimComputesRowDegrees) {
  DriverConfig cfg;
  cfg.num_workers = 2;
  Driver driver(cfg);
  auto data = driver.CreateDistArray("data", {4, 6}, 1, Density::kSparse);
  {
    CellStore& cells = driver.MutableCells(data);
    *cells.GetOrCreate(0 * 6 + 1) = 2.0f;
    *cells.GetOrCreate(0 * 6 + 3) = 3.0f;
    *cells.GetOrCreate(2 * 6 + 5) = 4.0f;
  }
  // Group along dim 0: out[row] = [count, sum].
  auto degrees = driver.GroupByDim(
      data, 0, "row_stats", 2, [](f32* acc, const IndexVec&, const f32* value) {
        acc[0] += 1.0f;
        acc[1] += value[0];
      });
  const CellStore& out = driver.Cells(degrees);
  EXPECT_FLOAT_EQ(out.Get(0)[0], 2.0f);
  EXPECT_FLOAT_EQ(out.Get(0)[1], 5.0f);
  EXPECT_FLOAT_EQ(out.Get(1)[0], 0.0f);
  EXPECT_FLOAT_EQ(out.Get(2)[0], 1.0f);
  EXPECT_FLOAT_EQ(out.Get(2)[1], 4.0f);
}

TEST(Transforms, MaterializedArrayDrivesAParallelLoop) {
  // End-to-end: load an iteration space from text, then run a loop over it.
  const std::string path = WriteTempFile("loop.txt",
                                         "0 0 1.0\n0 1 2.0\n1 0 3.0\n1 1 4.0\n2 2 5.0\n");
  DriverConfig cfg;
  cfg.num_workers = 2;
  Driver driver(cfg);
  auto data = driver.Materialize("data", {3, 3}, 1, Density::kSparse,
                                 ArrayRecipe::TextFile(path, MakeDelimitedParser(2, 1)));
  ASSERT_TRUE(data.ok());
  auto sums = driver.CreateDistArray("sums", {3}, 1, Density::kDense);

  LoopSpec spec;
  spec.iter_space = *data;
  spec.iter_extents = {3, 3};
  spec.AddAccess(sums, "sums", {Expr::LoopIndex(0)}, true);
  LoopKernel kernel = [&](LoopContext& ctx, IdxSpan idx, const f32* value) {
    const i64 k[1] = {idx[0]};
    ctx.Mutate(sums, k)[0] += value[0];
  };
  auto loop = driver.Compile(spec, kernel, {});
  ASSERT_TRUE(loop.ok()) << loop.status();
  ASSERT_TRUE(driver.Execute(*loop).ok());
  const CellStore& out = driver.Cells(sums);
  EXPECT_FLOAT_EQ(out.Get(0)[0], 3.0f);
  EXPECT_FLOAT_EQ(out.Get(1)[0], 7.0f);
  EXPECT_FLOAT_EQ(out.Get(2)[0], 5.0f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace orion
