// Simulated fabric: delivery, ordering, metering, shutdown semantics.
#include <gtest/gtest.h>

#include <thread>

#include "src/net/fabric.h"

namespace orion {
namespace {

Message Make(WorkerId from, WorkerId to, u32 tag, size_t payload_bytes = 0) {
  Message m;
  m.from = from;
  m.to = to;
  m.kind = MsgKind::kControl;
  m.tag = tag;
  m.payload.assign(payload_bytes, 0);
  return m;
}

TEST(Fabric, DeliversToTheRightEndpoint) {
  Fabric fabric(2);
  fabric.Send(Make(kMasterRank, 0, 1));
  fabric.Send(Make(kMasterRank, 1, 2));
  EXPECT_EQ(fabric.Recv(0)->tag, 1u);
  EXPECT_EQ(fabric.Recv(1)->tag, 2u);
}

TEST(Fabric, InOrderPerLink) {
  Fabric fabric(1);
  for (u32 i = 0; i < 100; ++i) {
    fabric.Send(Make(kMasterRank, 0, i));
  }
  for (u32 i = 0; i < 100; ++i) {
    EXPECT_EQ(fabric.Recv(0)->tag, i);
  }
}

TEST(Fabric, MasterEndpointWorks) {
  Fabric fabric(2);
  fabric.Send(Make(0, kMasterRank, 7));
  EXPECT_EQ(fabric.Recv(kMasterRank)->tag, 7u);
}

TEST(Fabric, TryRecvNonBlocking) {
  Fabric fabric(1);
  EXPECT_FALSE(fabric.TryRecv(0).has_value());
  fabric.Send(Make(kMasterRank, 0, 3));
  EXPECT_TRUE(fabric.TryRecv(0).has_value());
}

TEST(Fabric, MetersBytesAndMessages) {
  Fabric fabric(1);
  fabric.Send(Make(kMasterRank, 0, 0, 1000));
  fabric.Send(Make(kMasterRank, 0, 0, 500));
  const auto stats = fabric.Stats();
  EXPECT_EQ(stats.messages_sent, 2u);
  // WireSize adds a 32-byte header per message.
  EXPECT_EQ(stats.bytes_sent, 1000u + 500u + 2 * 32u);
}

TEST(Fabric, VirtualCostAccumulates) {
  NetCostModel model;
  model.latency_us = 100.0;
  model.bandwidth_bps = 8e6;  // 1 MB/s
  Fabric fabric(1, model);
  fabric.Send(Make(kMasterRank, 0, 0, 10000 - 32));
  const auto stats = fabric.Stats();
  // 100us latency + 10000 bytes at 1MB/s = 0.0001 + 0.01.
  EXPECT_NEAR(stats.virtual_net_seconds, 0.0101, 1e-4);
}

TEST(Fabric, ResetStatsClears) {
  Fabric fabric(1);
  fabric.Send(Make(kMasterRank, 0, 0, 10));
  fabric.ResetStats();
  EXPECT_EQ(fabric.Stats().messages_sent, 0u);
}

TEST(Fabric, BucketsTrackTraffic) {
  Fabric fabric(1, NetCostModel::Unlimited(), /*stats_bucket_seconds=*/10.0);
  fabric.Send(Make(kMasterRank, 0, 0, 100));
  const auto stats = fabric.Stats();
  ASSERT_FALSE(stats.bytes_per_bucket.empty());
  EXPECT_EQ(stats.bytes_per_bucket[0], 132u);
}

TEST(Fabric, ShutdownUnblocksReceivers) {
  Fabric fabric(1);
  std::thread receiver([&] { EXPECT_FALSE(fabric.Recv(0).has_value()); });
  fabric.Shutdown();
  receiver.join();
}

TEST(Fabric, ConcurrentSendersAllDeliver) {
  Fabric fabric(1);
  constexpr int kSenders = 4;
  constexpr int kEach = 500;
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&fabric, s] {
      for (int i = 0; i < kEach; ++i) {
        Message m;
        m.from = kMasterRank;
        m.to = 0;
        m.kind = MsgKind::kControl;
        m.tag = static_cast<u32>(s);
        fabric.Send(std::move(m));
      }
    });
  }
  for (auto& t : senders) {
    t.join();
  }
  int received = 0;
  while (fabric.TryRecv(0).has_value()) {
    ++received;
  }
  EXPECT_EQ(received, kSenders * kEach);
}

}  // namespace
}  // namespace orion
