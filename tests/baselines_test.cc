// Baseline systems must reproduce the qualitative behaviors the paper's
// comparisons rest on: data parallelism converges per-iteration worse than
// dependence-aware schedules; managed communication narrows the gap at the
// cost of bandwidth; STRADS-style manual model parallelism matches serial
// convergence; mini-batch (TF-style) convergence degrades with batch size.
#include <gtest/gtest.h>

#include "src/apps/lda.h"
#include "src/apps/sgd_mf.h"
#include "src/baselines/bosen_ps.h"
#include "src/baselines/strads_mp.h"
#include "src/baselines/tf_minibatch.h"

namespace orion {
namespace {

std::vector<RatingEntry> Data() {
  RatingsConfig d;
  d.rows = 400;
  d.cols = 300;
  d.nnz = 20000;
  d.true_rank = 4;
  d.seed = 7;
  return GenerateRatings(d);
}

constexpr int kRank = 4;
constexpr int kPasses = 8;

TEST(Baselines, BosenPlainConvergesSlowerThanStrads) {
  auto data = Data();

  StradsConfig sc;
  StradsMf strads(data, 400, 300, kRank, sc);
  BosenConfig bc;
  BosenMf bosen(data, 400, 300, kRank, bc);

  const f64 loss0 = strads.EvalLoss();
  for (int p = 0; p < kPasses; ++p) {
    strads.RunPass();
    bosen.RunPass();
  }
  const f64 strads_loss = strads.EvalLoss();
  const f64 bosen_loss = bosen.EvalLoss();
  EXPECT_LT(strads_loss, 0.2 * loss0);  // model parallelism converges well
  EXPECT_LT(bosen_loss, loss0);         // data parallelism improves...
  EXPECT_GT(bosen_loss, strads_loss);   // ...but lags per iteration
}

TEST(Baselines, ManagedCommImprovesBosenAtBandwidthCost) {
  auto data = Data();

  BosenConfig plain;
  BosenMf bosen_plain(data, 400, 300, kRank, plain);
  BosenConfig cm = plain;
  cm.managed_comm = true;
  cm.comm_intervals_per_pass = 16;
  BosenMf bosen_cm(data, 400, 300, kRank, cm);

  for (int p = 0; p < kPasses; ++p) {
    bosen_plain.RunPass();
    bosen_cm.RunPass();
  }
  EXPECT_LT(bosen_cm.EvalLoss(), bosen_plain.EvalLoss());
  EXPECT_GT(bosen_cm.bytes_communicated(), bosen_plain.bytes_communicated());
}

TEST(Baselines, StradsMatchesSerialConvergence) {
  auto data = Data();
  SgdMfConfig mf;
  mf.rank = kRank;
  SerialSgdMf serial(data, 400, 300, mf);
  StradsConfig sc;
  StradsMf strads(data, 400, 300, kRank, sc);
  for (int p = 0; p < kPasses; ++p) {
    serial.RunPass();
    strads.RunPass();
  }
  const f64 s = serial.EvalLoss();
  const f64 m = strads.EvalLoss();
  EXPECT_LT(m, 2.0 * s + 1e-6);
  EXPECT_GT(m, 0.25 * s - 1e-6);
}

TEST(Baselines, TfLargeBatchConvergesSlowerPerEpoch) {
  auto data = Data();
  TfConfig small_batch;
  small_batch.minibatch_size = 500;
  TfConfig large_batch = small_batch;
  large_batch.minibatch_size = 20000;  // the whole dataset per batch

  TfMinibatchMf tf_small(data, 400, 300, kRank, small_batch);
  TfMinibatchMf tf_large(data, 400, 300, kRank, large_batch);
  for (int p = 0; p < kPasses; ++p) {
    tf_small.RunPass();
    tf_large.RunPass();
  }
  EXPECT_LT(tf_small.EvalLoss(), tf_large.EvalLoss());
}

TEST(Baselines, BosenLdaLagsStradsLda) {
  CorpusConfig cc;
  cc.num_docs = 300;
  cc.vocab = 500;
  cc.true_topics = 8;
  cc.doc_length = 40;
  cc.seed = 11;
  auto corpus = GenerateCorpus(cc);

  StradsConfig sc;
  StradsLda strads(corpus, 300, 500, 8, sc);
  BosenConfig bc;
  BosenLda bosen(corpus, 300, 500, 8, bc);
  const f64 ll0 = strads.EvalLogLikelihood();
  for (int p = 0; p < 10; ++p) {
    strads.RunPass();
    bosen.RunPass();
  }
  EXPECT_GT(strads.EvalLogLikelihood(), ll0 + 0.1);
  EXPECT_GT(bosen.EvalLogLikelihood(), ll0);  // improves, but...
  EXPECT_GE(strads.EvalLogLikelihood(), bosen.EvalLogLikelihood() - 0.02);
}

}  // namespace
}  // namespace orion
