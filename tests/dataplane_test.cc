// Data-plane raw-speed pass: the SIMD kernels, the serialization buffer
// pool, and per-array page sizing must all be invisible to results.
//
//  - simd::CopyF32 / simd::AddF32 are bit-for-bit identical to the scalar
//    loops at every dispatch level, across randomized sizes and alignments
//    (the runtime-dispatch seams: head/tail scalar remainders, unrolled
//    bodies, unaligned loads).
//  - BufferPool recycles released buffers (steady-state hit rate), accounts
//    hits/misses/discards, and its thread-local caches stay coherent under
//    concurrent lanes.
//  - VersionedCellStore contents are bit-for-bit identical across
//    page_cells in {64, 256, 1024}, and the autotuner repaginates only on
//    two consecutive agreeing picks at quiesced points.
//  - The delta log round-trips stores with non-default page sizes (format
//    v2 carries the page geometry per record).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include "src/common/buffer_pool.h"
#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/common/simd.h"
#include "src/dsm/cell_store.h"
#include "src/dsm/delta_log.h"
#include "src/dsm/versioned_store.h"

namespace orion {
namespace {

// ---------------------------------------------------------------------------
// SIMD kernels vs scalar reference.

std::vector<simd::Level> LevelsToTest() {
  std::vector<simd::Level> out = {simd::Level::kScalar};
  if (simd::BestSupportedLevel() >= simd::Level::kSSE2) {
    out.push_back(simd::Level::kSSE2);
  }
  if (simd::BestSupportedLevel() >= simd::Level::kAVX2) {
    out.push_back(simd::Level::kAVX2);
  }
  return out;
}

TEST(Simd, DispatchLevels) {
  // x86-64 guarantees SSE2; elsewhere scalar must still work.
  EXPECT_GE(simd::BestSupportedLevel(), simd::Level::kScalar);
  simd::ForceLevel(simd::Level::kScalar);
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  simd::ResetLevel();
  EXPECT_EQ(simd::ActiveLevel(), simd::BestSupportedLevel());
  // Forcing past what the CPU supports clamps instead of crashing.
  simd::ForceLevel(simd::Level::kAVX2);
  EXPECT_LE(simd::ActiveLevel(), simd::BestSupportedLevel());
  simd::ResetLevel();
}

TEST(Simd, CopyMatchesScalarAcrossSizesAndAlignments) {
  Rng rng(0x5eed5eedULL);
  // Padded buffers let us start the spans at every offset in [0, 8): the
  // kernels must handle unaligned heads, unrolled bodies, and scalar tails.
  constexpr size_t kMax = 4099;
  std::vector<f32> src(kMax + 16), ref(kMax + 16), out(kMax + 16);
  for (f32& v : src) {
    v = static_cast<f32>(rng.NextGaussian());
  }
  const size_t sizes[] = {0, 1, 2, 3, 4, 7, 8, 15, 16, 31, 32, 33,
                          63, 64, 100, 255, 256, 1000, 4096, kMax};
  for (simd::Level level : LevelsToTest()) {
    simd::ForceLevel(level);
    for (size_t n : sizes) {
      for (size_t off = 0; off < 8; ++off) {
        std::fill(ref.begin(), ref.end(), -7.0f);
        std::fill(out.begin(), out.end(), -7.0f);
        for (size_t i = 0; i < n; ++i) {
          ref[off + i] = src[off + i];  // reference: element-wise assign
        }
        simd::CopyF32(out.data() + off, src.data() + off, n);
        ASSERT_EQ(std::memcmp(out.data(), ref.data(), out.size() * sizeof(f32)), 0)
            << "level=" << simd::LevelName(level) << " n=" << n << " off=" << off;
      }
    }
  }
  simd::ResetLevel();
}

TEST(Simd, AddMatchesScalarBitForBitAcrossLevels) {
  // The determinism contract: one IEEE add per lane at every level, so the
  // result bytes cannot depend on the dispatch level. Gaussian values with
  // mixed magnitudes exercise rounding.
  Rng rng(0xadd5eedULL);
  constexpr size_t kMax = 2053;
  std::vector<f32> src(kMax + 8), base(kMax + 8);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<f32>(rng.NextGaussian() * 1e3);
    base[i] = static_cast<f32>(rng.NextGaussian() * 1e-3);
  }
  const size_t sizes[] = {1, 3, 4, 5, 8, 16, 17, 64, 129, 1024, kMax};
  simd::ForceLevel(simd::Level::kScalar);
  for (size_t n : sizes) {
    for (size_t off = 0; off < 4; ++off) {
      std::vector<f32> want(base);
      simd::AddF32(want.data() + off, src.data() + off, n);
      for (simd::Level level : LevelsToTest()) {
        simd::ForceLevel(level);
        std::vector<f32> got(base);
        simd::AddF32(got.data() + off, src.data() + off, n);
        ASSERT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(f32)), 0)
            << "level=" << simd::LevelName(level) << " n=" << n << " off=" << off;
      }
      simd::ForceLevel(simd::Level::kScalar);
    }
  }
  simd::ResetLevel();
}

// ---------------------------------------------------------------------------
// Buffer pool.

TEST(BufferPool, AcquireReleaseRecycles) {
  BufferPool::TrimThreadCacheForTest();
  BufferPool::ResetStatsForTest();

  std::vector<u8> a = BufferPool::Acquire(100);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_GE(a.capacity(), 100u);
  const u8* storage = a.data();
  BufferPool::Release(std::move(a));

  // Same class: must come back with the same storage, counted as a hit.
  std::vector<u8> b = BufferPool::Acquire(80);
  EXPECT_EQ(b.data(), storage);
  const BufferPool::Stats s = BufferPool::AggregateStats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.releases, 1u);
  BufferPool::Release(std::move(b));
  BufferPool::TrimThreadCacheForTest();
}

TEST(BufferPool, OversizedAndEmptyReleases) {
  BufferPool::TrimThreadCacheForTest();
  BufferPool::ResetStatsForTest();

  // Zero-capacity vectors (moved-from payloads) are ignored entirely.
  BufferPool::Release(std::vector<u8>{});
  EXPECT_EQ(BufferPool::AggregateStats().releases, 0u);
  EXPECT_EQ(BufferPool::AggregateStats().discards, 0u);

  // Oversized buffers bypass the pool and are discarded on release.
  std::vector<u8> big = BufferPool::Acquire(4u << 20);
  EXPECT_GE(big.capacity(), 4u << 20);
  BufferPool::Release(std::move(big));
  const BufferPool::Stats s = BufferPool::AggregateStats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.discards, 1u);
  BufferPool::TrimThreadCacheForTest();
}

TEST(BufferPool, HighWaterTracksParkedBytes) {
  BufferPool::TrimThreadCacheForTest();
  BufferPool::ResetStatsForTest();

  std::vector<u8> a = BufferPool::Acquire(1024);
  std::vector<u8> b = BufferPool::Acquire(1024);
  const size_t cap = a.capacity() + b.capacity();
  BufferPool::Release(std::move(a));
  BufferPool::Release(std::move(b));
  EXPECT_GE(BufferPool::AggregateStats().pooled_bytes_high_water, cap);
  BufferPool::TrimThreadCacheForTest();
}

TEST(BufferPool, ConcurrentLanesSteadyStateHits) {
  BufferPool::ResetStatsForTest();
  // Each thread runs an encode/consume loop against its own cache; after
  // warm-up every acquire must be a hit (allocations-per-message ~ 0).
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        std::vector<u8> buf = BufferPool::Acquire(256 + static_cast<size_t>(t));
        buf.push_back(static_cast<u8>(i));
        BufferPool::Release(std::move(buf));
      }
      BufferPool::TrimThreadCacheForTest();
    });
  }
  for (std::thread& t : ts) {
    t.join();
  }
  const BufferPool::Stats s = BufferPool::AggregateStats();
  EXPECT_EQ(s.acquires, static_cast<u64>(kThreads) * kIters);
  // First acquire per thread allocates; everything after recycles.
  EXPECT_GE(s.hits, s.acquires - kThreads);
}

TEST(BufferPool, ByteWriterUsesPool) {
  BufferPool::TrimThreadCacheForTest();
  BufferPool::ResetStatsForTest();

  // Encode, consume, release, encode again: the second writer's backing
  // buffer must be recycled storage (same size class via the reserve hint).
  ByteWriter w1(100 * sizeof(i64));
  for (int i = 0; i < 100; ++i) {
    w1.Put<i64>(i);
  }
  std::vector<u8> payload = w1.Take();
  const std::vector<u8> want(payload.begin(), payload.end());
  BufferPool::Release(std::move(payload));

  ByteWriter w2(100 * sizeof(i64));
  for (int i = 0; i < 100; ++i) {
    w2.Put<i64>(i);
  }
  std::vector<u8> payload2 = w2.Take();
  EXPECT_EQ(want, payload2);  // recycling must not perturb encoded bytes
  const BufferPool::Stats s = BufferPool::AggregateStats();
  EXPECT_GE(s.hits, 1u);
  BufferPool::Release(std::move(payload2));
  BufferPool::TrimThreadCacheForTest();
}

TEST(BufferPool, ByteWriterReserveAvoidsRegrowth) {
  // A writer constructed with the exact size must not reallocate while
  // encoding (the Reserve audit on the Encode chains depends on this).
  const size_t total = 64 * sizeof(i64);
  ByteWriter w(total);
  for (int i = 0; i < 64; ++i) {
    w.Put<i64>(i);
  }
  std::vector<u8> out = w.Take();
  EXPECT_EQ(out.size(), total);
  BufferPool::Release(std::move(out));
  BufferPool::TrimThreadCacheForTest();
}

// ---------------------------------------------------------------------------
// Page-size sweep and autotune.

using CellMap = std::map<i64, std::vector<f32>>;

CellMap StoreSnapshot(const VersionedCellStore& s) {
  CellMap out;
  const i32 vdim = s.value_dim();
  s.ForEachConst([&](i64 key, const f32* v) { out[key].assign(v, v + vdim); });
  return out;
}

::testing::AssertionResult BitIdentical(const CellMap& a, const CellMap& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "cell counts differ: " << a.size() << " vs " << b.size();
  }
  for (const auto& [key, va] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      return ::testing::AssertionFailure() << "key " << key << " missing";
    }
    if (va.size() != it->second.size() ||
        std::memcmp(va.data(), it->second.data(), va.size() * sizeof(f32)) != 0) {
      return ::testing::AssertionFailure() << "key " << key << " differs bitwise";
    }
  }
  return ::testing::AssertionSuccess();
}

// One serve-write-snapshot cycle at a given page size; returns the final
// contents. Every page size must produce byte-identical results.
CellMap RunPagedWorkload(i64 page_cells, bool dense) {
  constexpr i32 kDim = 3;
  constexpr i64 kCells = 1500;
  CellStore flat = dense ? CellStore(kDim, CellStore::Layout::kFullDense, kCells)
                         : CellStore(kDim, CellStore::Layout::kHashed, 0);
  Rng rng(0x9a6e5eedULL);
  for (i64 k = 0; k < kCells; ++k) {
    const i64 key = dense ? k : k * 7 + 1;
    f32* v = flat.GetOrCreate(key);
    for (i32 d = 0; d < kDim; ++d) {
      v[d] = static_cast<f32>(rng.NextGaussian());
    }
  }
  VersionedCellStore store(std::move(flat));
  store.SetPageCells(page_cells);
  store.BeginServing();
  EXPECT_EQ(store.page_cells(), page_cells);

  // Pin a snapshot, write through COW under it, merge additive deltas.
  VersionedCellStore::Snapshot snap = store.Pin();
  Rng wr(0x11ULL);
  for (int i = 0; i < 300; ++i) {
    const i64 k = wr.NextIndex(kCells);
    const i64 key = dense ? k : k * 7 + 1;
    f32* v = store.GetOrCreate(key);
    v[0] += 1.0f;
    v[2] = static_cast<f32>(i);
  }
  CellStore updates(kDim, CellStore::Layout::kHashed, 0);
  for (int i = 0; i < 100; ++i) {
    const i64 k = wr.NextIndex(kCells);
    const i64 key = dense ? k : k * 7 + 1;
    f32* v = updates.GetOrCreate(key);
    v[1] = 0.25f;
  }
  store.MergeAdd(updates);
  snap.Release();
  return StoreSnapshot(store);
}

TEST(PageSize, SweepBitForBitIdentical) {
  for (bool dense : {true, false}) {
    const CellMap want = RunPagedWorkload(VersionedCellStore::kPageCells, dense);
    for (i64 pc : {VersionedCellStore::kMinPageCells, VersionedCellStore::kMaxPageCells,
                   i64{128}}) {
      EXPECT_TRUE(BitIdentical(want, RunPagedWorkload(pc, dense)))
          << "page_cells=" << pc << " dense=" << dense;
    }
  }
}

TEST(PageSize, SetPageCellsRepaginatesInPlace) {
  CellStore flat(2, CellStore::Layout::kFullDense, 1000);
  for (i64 k = 0; k < 1000; ++k) {
    flat.GetOrCreate(k)[0] = static_cast<f32>(k);
  }
  VersionedCellStore store(std::move(flat));
  store.BeginServing();
  const CellMap before = StoreSnapshot(store);
  EXPECT_EQ(store.page_cells(), VersionedCellStore::kPageCells);

  store.SetPageCells(64);
  EXPECT_TRUE(store.paged());
  EXPECT_EQ(store.page_cells(), 64);
  EXPECT_EQ(store.num_pages(), (1000 + 63) / 64);
  EXPECT_TRUE(BitIdentical(before, StoreSnapshot(store)));
  // Repagination cannot know which pages changed since the last checkpoint.
  EXPECT_FALSE(store.delta_tracking_valid());
}

TEST(PageSize, AutoTuneServingOnlyGrowsWithHysteresis) {
  CellStore flat(1, CellStore::Layout::kFullDense, 4000);
  VersionedCellStore store(std::move(flat));
  store.BeginServing();
  ASSERT_EQ(store.page_cells(), VersionedCellStore::kPageCells);

  // Serving-only passes pick kMaxPageCells, but one pick must not
  // repaginate: hysteresis requires two consecutive agreeing picks.
  EXPECT_FALSE(store.AutoTunePageSize());
  EXPECT_EQ(store.page_cells(), VersionedCellStore::kPageCells);
  EXPECT_TRUE(store.AutoTunePageSize());
  EXPECT_EQ(store.page_cells(), VersionedCellStore::kMaxPageCells);
}

TEST(PageSize, AutoTuneSparseWritersShrink) {
  CellStore flat(1, CellStore::Layout::kFullDense, 4000);
  VersionedCellStore store(std::move(flat));
  store.BeginServing();
  store.SetPageCells(VersionedCellStore::kMaxPageCells);

  // A handful of writes per pass out of 4000 cells: write fraction < 1/16,
  // so the tuner wants kMinPageCells. Two agreeing passes repaginate.
  for (int pass = 0; pass < 2; ++pass) {
    for (i64 k = 0; k < 10; ++k) {
      store.GetOrCreate(k * 57)[0] += 1.0f;
    }
    const bool repaginated = store.AutoTunePageSize();
    EXPECT_EQ(repaginated, pass == 1);
  }
  EXPECT_EQ(store.page_cells(), VersionedCellStore::kMinPageCells);
}

TEST(PageSize, AutoTuneBlockedByLivePin) {
  CellStore flat(1, CellStore::Layout::kFullDense, 4000);
  VersionedCellStore store(std::move(flat));
  store.BeginServing();
  VersionedCellStore::Snapshot snap = store.Pin();
  // A live snapshot pins the page geometry; tuning must refuse quietly.
  EXPECT_FALSE(store.AutoTunePageSize());
  EXPECT_FALSE(store.AutoTunePageSize());
  EXPECT_EQ(store.page_cells(), VersionedCellStore::kPageCells);
  snap.Release();
}

// ---------------------------------------------------------------------------
// Delta log with non-default page geometry (format v2).

TEST(PageSize, DeltaLogRoundTripsNonDefaultPageSize) {
  const std::string dir = ::testing::TempDir() + "/orion_dataplane_log";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  CellStore flat(2, CellStore::Layout::kFullDense, 700);
  for (i64 k = 0; k < 700; ++k) {
    f32* v = flat.GetOrCreate(k);
    v[0] = static_cast<f32>(k);
    v[1] = static_cast<f32>(-k);
  }
  VersionedCellStore store(std::move(flat));
  store.SetPageCells(64);  // delta records must carry this geometry
  store.BeginServing();

  auto writer = DeltaLogWriter::Open(dir, {/*compact_every=*/8});
  ASSERT_TRUE(writer.ok()) << writer.status();
  MasterRecord m0;
  m0.next_pass = 0;
  auto s0 = (*writer)->AppendCheckpoint(m0, {{"t", &store}});
  ASSERT_TRUE(s0.ok()) << s0.status();
  ASSERT_TRUE(store.delta_tracking_valid());

  // Dirty two cells in distinct 64-cell pages; the delta record's page
  // indices and spans are in units of the store's page size, not the
  // default.
  store.GetOrCreate(5)[0] = 42.0f;
  store.GetOrCreate(650)[1] = -42.0f;
  const CellMap snap1 = StoreSnapshot(store);
  MasterRecord m1;
  m1.next_pass = 1;
  auto s1 = (*writer)->AppendCheckpoint(m1, {{"t", &store}});
  ASSERT_TRUE(s1.ok()) << s1.status();
  EXPECT_FALSE(s1->wrote_base);
  EXPECT_EQ(s1->pages_deltad, 2u);

  auto reader = DeltaLogReader::Open(dir);
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto at1 = reader->Latest();
  ASSERT_TRUE(at1.ok()) << at1.status();
  CellMap got;
  at1->arrays.at("t").ForEachConst([&](i64 key, const f32* v) {
    got[key].assign(v, v + 2);
  });
  EXPECT_TRUE(BitIdentical(snap1, got));
}

}  // namespace
}  // namespace orion
