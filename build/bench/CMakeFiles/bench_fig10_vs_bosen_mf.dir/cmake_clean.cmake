file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_vs_bosen_mf.dir/bench_fig10_vs_bosen_mf.cc.o"
  "CMakeFiles/bench_fig10_vs_bosen_mf.dir/bench_fig10_vs_bosen_mf.cc.o.d"
  "bench_fig10_vs_bosen_mf"
  "bench_fig10_vs_bosen_mf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_vs_bosen_mf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
