# Empty dependencies file for bench_fig10_vs_bosen_mf.
# This may be replaced when dependencies are built.
