file(REMOVE_RECURSE
  "CMakeFiles/bench_prefetch_slr.dir/bench_prefetch_slr.cc.o"
  "CMakeFiles/bench_prefetch_slr.dir/bench_prefetch_slr.cc.o.d"
  "bench_prefetch_slr"
  "bench_prefetch_slr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prefetch_slr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
