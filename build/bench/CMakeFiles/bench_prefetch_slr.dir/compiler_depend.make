# Empty compiler generated dependencies file for bench_prefetch_slr.
# This may be replaced when dependencies are built.
