# Empty dependencies file for bench_fig9c_lda_convergence.
# This may be replaced when dependencies are built.
