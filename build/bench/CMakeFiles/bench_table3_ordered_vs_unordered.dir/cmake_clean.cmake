file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_ordered_vs_unordered.dir/bench_table3_ordered_vs_unordered.cc.o"
  "CMakeFiles/bench_table3_ordered_vs_unordered.dir/bench_table3_ordered_vs_unordered.cc.o.d"
  "bench_table3_ordered_vs_unordered"
  "bench_table3_ordered_vs_unordered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ordered_vs_unordered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
