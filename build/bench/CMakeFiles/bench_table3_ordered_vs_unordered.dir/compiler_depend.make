# Empty compiler generated dependencies file for bench_table3_ordered_vs_unordered.
# This may be replaced when dependencies are built.
