# Empty compiler generated dependencies file for bench_fig10c_vs_bosen_lda.
# This may be replaced when dependencies are built.
