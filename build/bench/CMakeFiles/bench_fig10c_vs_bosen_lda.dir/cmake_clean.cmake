file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10c_vs_bosen_lda.dir/bench_fig10c_vs_bosen_lda.cc.o"
  "CMakeFiles/bench_fig10c_vs_bosen_lda.dir/bench_fig10c_vs_bosen_lda.cc.o.d"
  "bench_fig10c_vs_bosen_lda"
  "bench_fig10c_vs_bosen_lda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10c_vs_bosen_lda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
