file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_vs_strads.dir/bench_fig11_vs_strads.cc.o"
  "CMakeFiles/bench_fig11_vs_strads.dir/bench_fig11_vs_strads.cc.o.d"
  "bench_fig11_vs_strads"
  "bench_fig11_vs_strads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vs_strads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
