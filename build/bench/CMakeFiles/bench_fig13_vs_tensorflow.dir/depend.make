# Empty dependencies file for bench_fig13_vs_tensorflow.
# This may be replaced when dependencies are built.
