file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_vs_tensorflow.dir/bench_fig13_vs_tensorflow.cc.o"
  "CMakeFiles/bench_fig13_vs_tensorflow.dir/bench_fig13_vs_tensorflow.cc.o.d"
  "bench_fig13_vs_tensorflow"
  "bench_fig13_vs_tensorflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_vs_tensorflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
