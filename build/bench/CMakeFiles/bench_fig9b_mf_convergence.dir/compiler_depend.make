# Empty compiler generated dependencies file for bench_fig9b_mf_convergence.
# This may be replaced when dependencies are built.
