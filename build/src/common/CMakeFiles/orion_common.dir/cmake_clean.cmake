file(REMOVE_RECURSE
  "CMakeFiles/orion_common.dir/histogram.cc.o"
  "CMakeFiles/orion_common.dir/histogram.cc.o.d"
  "CMakeFiles/orion_common.dir/logging.cc.o"
  "CMakeFiles/orion_common.dir/logging.cc.o.d"
  "CMakeFiles/orion_common.dir/status.cc.o"
  "CMakeFiles/orion_common.dir/status.cc.o.d"
  "CMakeFiles/orion_common.dir/thread_pool.cc.o"
  "CMakeFiles/orion_common.dir/thread_pool.cc.o.d"
  "liborion_common.a"
  "liborion_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
