file(REMOVE_RECURSE
  "CMakeFiles/orion_ir.dir/analyze_body.cc.o"
  "CMakeFiles/orion_ir.dir/analyze_body.cc.o.d"
  "CMakeFiles/orion_ir.dir/expr.cc.o"
  "CMakeFiles/orion_ir.dir/expr.cc.o.d"
  "CMakeFiles/orion_ir.dir/loop_spec.cc.o"
  "CMakeFiles/orion_ir.dir/loop_spec.cc.o.d"
  "liborion_ir.a"
  "liborion_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
