# Empty dependencies file for orion_ir.
# This may be replaced when dependencies are built.
