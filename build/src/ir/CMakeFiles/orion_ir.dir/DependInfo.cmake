
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/analyze_body.cc" "src/ir/CMakeFiles/orion_ir.dir/analyze_body.cc.o" "gcc" "src/ir/CMakeFiles/orion_ir.dir/analyze_body.cc.o.d"
  "/root/repo/src/ir/expr.cc" "src/ir/CMakeFiles/orion_ir.dir/expr.cc.o" "gcc" "src/ir/CMakeFiles/orion_ir.dir/expr.cc.o.d"
  "/root/repo/src/ir/loop_spec.cc" "src/ir/CMakeFiles/orion_ir.dir/loop_spec.cc.o" "gcc" "src/ir/CMakeFiles/orion_ir.dir/loop_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/orion_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/orion_dsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
