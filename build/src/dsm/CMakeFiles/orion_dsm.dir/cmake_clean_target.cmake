file(REMOVE_RECURSE
  "liborion_dsm.a"
)
