# Empty dependencies file for orion_dsm.
# This may be replaced when dependencies are built.
