file(REMOVE_RECURSE
  "CMakeFiles/orion_dsm.dir/checkpoint.cc.o"
  "CMakeFiles/orion_dsm.dir/checkpoint.cc.o.d"
  "CMakeFiles/orion_dsm.dir/dist_array_buffer.cc.o"
  "CMakeFiles/orion_dsm.dir/dist_array_buffer.cc.o.d"
  "liborion_dsm.a"
  "liborion_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
