
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsm/checkpoint.cc" "src/dsm/CMakeFiles/orion_dsm.dir/checkpoint.cc.o" "gcc" "src/dsm/CMakeFiles/orion_dsm.dir/checkpoint.cc.o.d"
  "/root/repo/src/dsm/dist_array_buffer.cc" "src/dsm/CMakeFiles/orion_dsm.dir/dist_array_buffer.cc.o" "gcc" "src/dsm/CMakeFiles/orion_dsm.dir/dist_array_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/orion_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
