file(REMOVE_RECURSE
  "CMakeFiles/orion_runtime.dir/driver.cc.o"
  "CMakeFiles/orion_runtime.dir/driver.cc.o.d"
  "CMakeFiles/orion_runtime.dir/executor.cc.o"
  "CMakeFiles/orion_runtime.dir/executor.cc.o.d"
  "CMakeFiles/orion_runtime.dir/recipe.cc.o"
  "CMakeFiles/orion_runtime.dir/recipe.cc.o.d"
  "liborion_runtime.a"
  "liborion_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
