file(REMOVE_RECURSE
  "CMakeFiles/orion_baselines.dir/bosen_ps.cc.o"
  "CMakeFiles/orion_baselines.dir/bosen_ps.cc.o.d"
  "CMakeFiles/orion_baselines.dir/strads_mp.cc.o"
  "CMakeFiles/orion_baselines.dir/strads_mp.cc.o.d"
  "CMakeFiles/orion_baselines.dir/tf_minibatch.cc.o"
  "CMakeFiles/orion_baselines.dir/tf_minibatch.cc.o.d"
  "liborion_baselines.a"
  "liborion_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
