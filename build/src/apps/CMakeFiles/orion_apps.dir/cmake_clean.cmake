file(REMOVE_RECURSE
  "CMakeFiles/orion_apps.dir/datagen.cc.o"
  "CMakeFiles/orion_apps.dir/datagen.cc.o.d"
  "CMakeFiles/orion_apps.dir/gbt.cc.o"
  "CMakeFiles/orion_apps.dir/gbt.cc.o.d"
  "CMakeFiles/orion_apps.dir/lda.cc.o"
  "CMakeFiles/orion_apps.dir/lda.cc.o.d"
  "CMakeFiles/orion_apps.dir/sgd_mf.cc.o"
  "CMakeFiles/orion_apps.dir/sgd_mf.cc.o.d"
  "CMakeFiles/orion_apps.dir/slr.cc.o"
  "CMakeFiles/orion_apps.dir/slr.cc.o.d"
  "liborion_apps.a"
  "liborion_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
