file(REMOVE_RECURSE
  "liborion_apps.a"
)
