# Empty dependencies file for orion_apps.
# This may be replaced when dependencies are built.
