# Empty compiler generated dependencies file for orion_net.
# This may be replaced when dependencies are built.
