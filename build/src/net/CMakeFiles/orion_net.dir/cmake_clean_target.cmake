file(REMOVE_RECURSE
  "liborion_net.a"
)
