file(REMOVE_RECURSE
  "CMakeFiles/orion_net.dir/fabric.cc.o"
  "CMakeFiles/orion_net.dir/fabric.cc.o.d"
  "liborion_net.a"
  "liborion_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
