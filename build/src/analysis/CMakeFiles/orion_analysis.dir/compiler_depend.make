# Empty compiler generated dependencies file for orion_analysis.
# This may be replaced when dependencies are built.
