file(REMOVE_RECURSE
  "CMakeFiles/orion_analysis.dir/dep_vector.cc.o"
  "CMakeFiles/orion_analysis.dir/dep_vector.cc.o.d"
  "CMakeFiles/orion_analysis.dir/dependence.cc.o"
  "CMakeFiles/orion_analysis.dir/dependence.cc.o.d"
  "CMakeFiles/orion_analysis.dir/plan.cc.o"
  "CMakeFiles/orion_analysis.dir/plan.cc.o.d"
  "CMakeFiles/orion_analysis.dir/unimodular.cc.o"
  "CMakeFiles/orion_analysis.dir/unimodular.cc.o.d"
  "liborion_analysis.a"
  "liborion_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
