file(REMOVE_RECURSE
  "liborion_analysis.a"
)
