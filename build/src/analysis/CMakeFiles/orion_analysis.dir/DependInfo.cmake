
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dep_vector.cc" "src/analysis/CMakeFiles/orion_analysis.dir/dep_vector.cc.o" "gcc" "src/analysis/CMakeFiles/orion_analysis.dir/dep_vector.cc.o.d"
  "/root/repo/src/analysis/dependence.cc" "src/analysis/CMakeFiles/orion_analysis.dir/dependence.cc.o" "gcc" "src/analysis/CMakeFiles/orion_analysis.dir/dependence.cc.o.d"
  "/root/repo/src/analysis/plan.cc" "src/analysis/CMakeFiles/orion_analysis.dir/plan.cc.o" "gcc" "src/analysis/CMakeFiles/orion_analysis.dir/plan.cc.o.d"
  "/root/repo/src/analysis/unimodular.cc" "src/analysis/CMakeFiles/orion_analysis.dir/unimodular.cc.o" "gcc" "src/analysis/CMakeFiles/orion_analysis.dir/unimodular.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/orion_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/orion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/orion_dsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
