file(REMOVE_RECURSE
  "CMakeFiles/slr_test.dir/slr_test.cc.o"
  "CMakeFiles/slr_test.dir/slr_test.cc.o.d"
  "slr_test"
  "slr_test.pdb"
  "slr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
