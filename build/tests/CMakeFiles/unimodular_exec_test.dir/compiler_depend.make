# Empty compiler generated dependencies file for unimodular_exec_test.
# This may be replaced when dependencies are built.
