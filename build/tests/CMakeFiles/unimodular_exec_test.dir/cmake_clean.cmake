file(REMOVE_RECURSE
  "CMakeFiles/unimodular_exec_test.dir/unimodular_exec_test.cc.o"
  "CMakeFiles/unimodular_exec_test.dir/unimodular_exec_test.cc.o.d"
  "unimodular_exec_test"
  "unimodular_exec_test.pdb"
  "unimodular_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unimodular_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
