# Empty dependencies file for runtime_smoke_test.
# This may be replaced when dependencies are built.
