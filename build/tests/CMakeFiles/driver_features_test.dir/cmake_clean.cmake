file(REMOVE_RECURSE
  "CMakeFiles/driver_features_test.dir/driver_features_test.cc.o"
  "CMakeFiles/driver_features_test.dir/driver_features_test.cc.o.d"
  "driver_features_test"
  "driver_features_test.pdb"
  "driver_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
