# Empty dependencies file for driver_features_test.
# This may be replaced when dependencies are built.
