file(REMOVE_RECURSE
  "CMakeFiles/unimodular_test.dir/unimodular_test.cc.o"
  "CMakeFiles/unimodular_test.dir/unimodular_test.cc.o.d"
  "unimodular_test"
  "unimodular_test.pdb"
  "unimodular_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unimodular_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
