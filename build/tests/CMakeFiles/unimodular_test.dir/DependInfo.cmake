
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/unimodular_test.cc" "tests/CMakeFiles/unimodular_test.dir/unimodular_test.cc.o" "gcc" "tests/CMakeFiles/unimodular_test.dir/unimodular_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/orion_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/orion_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/orion_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/orion_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/orion_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/orion_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/orion_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/orion_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
