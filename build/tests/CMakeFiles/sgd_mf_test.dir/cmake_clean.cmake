file(REMOVE_RECURSE
  "CMakeFiles/sgd_mf_test.dir/sgd_mf_test.cc.o"
  "CMakeFiles/sgd_mf_test.dir/sgd_mf_test.cc.o.d"
  "sgd_mf_test"
  "sgd_mf_test.pdb"
  "sgd_mf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgd_mf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
