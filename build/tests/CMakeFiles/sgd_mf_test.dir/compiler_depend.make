# Empty compiler generated dependencies file for sgd_mf_test.
# This may be replaced when dependencies are built.
