# Empty dependencies file for stmt_ir_test.
# This may be replaced when dependencies are built.
