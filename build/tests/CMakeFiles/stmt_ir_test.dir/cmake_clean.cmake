file(REMOVE_RECURSE
  "CMakeFiles/stmt_ir_test.dir/stmt_ir_test.cc.o"
  "CMakeFiles/stmt_ir_test.dir/stmt_ir_test.cc.o.d"
  "stmt_ir_test"
  "stmt_ir_test.pdb"
  "stmt_ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stmt_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
