file(REMOVE_RECURSE
  "CMakeFiles/serializability_test.dir/serializability_test.cc.o"
  "CMakeFiles/serializability_test.dir/serializability_test.cc.o.d"
  "serializability_test"
  "serializability_test.pdb"
  "serializability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serializability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
