# Empty compiler generated dependencies file for accumulator_serial_test.
# This may be replaced when dependencies are built.
