file(REMOVE_RECURSE
  "CMakeFiles/accumulator_serial_test.dir/accumulator_serial_test.cc.o"
  "CMakeFiles/accumulator_serial_test.dir/accumulator_serial_test.cc.o.d"
  "accumulator_serial_test"
  "accumulator_serial_test.pdb"
  "accumulator_serial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accumulator_serial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
