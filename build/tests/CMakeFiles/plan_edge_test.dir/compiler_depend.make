# Empty compiler generated dependencies file for plan_edge_test.
# This may be replaced when dependencies are built.
