file(REMOVE_RECURSE
  "CMakeFiles/plan_edge_test.dir/plan_edge_test.cc.o"
  "CMakeFiles/plan_edge_test.dir/plan_edge_test.cc.o.d"
  "plan_edge_test"
  "plan_edge_test.pdb"
  "plan_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
