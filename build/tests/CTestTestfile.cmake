# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/accumulator_serial_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/dependence_test[1]_include.cmake")
include("/root/repo/build/tests/driver_features_test[1]_include.cmake")
include("/root/repo/build/tests/dsm_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/gbt_test[1]_include.cmake")
include("/root/repo/build/tests/lda_test[1]_include.cmake")
include("/root/repo/build/tests/plan_edge_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/serializability_test[1]_include.cmake")
include("/root/repo/build/tests/sgd_mf_test[1]_include.cmake")
include("/root/repo/build/tests/slr_test[1]_include.cmake")
include("/root/repo/build/tests/stmt_ir_test[1]_include.cmake")
include("/root/repo/build/tests/transforms_test[1]_include.cmake")
include("/root/repo/build/tests/unimodular_exec_test[1]_include.cmake")
include("/root/repo/build/tests/unimodular_test[1]_include.cmake")
