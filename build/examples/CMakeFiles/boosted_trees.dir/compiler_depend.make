# Empty compiler generated dependencies file for boosted_trees.
# This may be replaced when dependencies are built.
