file(REMOVE_RECURSE
  "CMakeFiles/boosted_trees.dir/boosted_trees.cpp.o"
  "CMakeFiles/boosted_trees.dir/boosted_trees.cpp.o.d"
  "boosted_trees"
  "boosted_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosted_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
