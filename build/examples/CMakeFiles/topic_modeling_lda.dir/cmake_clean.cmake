file(REMOVE_RECURSE
  "CMakeFiles/topic_modeling_lda.dir/topic_modeling_lda.cpp.o"
  "CMakeFiles/topic_modeling_lda.dir/topic_modeling_lda.cpp.o.d"
  "topic_modeling_lda"
  "topic_modeling_lda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topic_modeling_lda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
