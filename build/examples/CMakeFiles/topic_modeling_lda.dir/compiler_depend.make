# Empty compiler generated dependencies file for topic_modeling_lda.
# This may be replaced when dependencies are built.
