# Empty dependencies file for recommender_mf.
# This may be replaced when dependencies are built.
