file(REMOVE_RECURSE
  "CMakeFiles/recommender_mf.dir/recommender_mf.cpp.o"
  "CMakeFiles/recommender_mf.dir/recommender_mf.cpp.o.d"
  "recommender_mf"
  "recommender_mf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommender_mf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
