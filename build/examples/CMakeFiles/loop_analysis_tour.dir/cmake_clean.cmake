file(REMOVE_RECURSE
  "CMakeFiles/loop_analysis_tour.dir/loop_analysis_tour.cpp.o"
  "CMakeFiles/loop_analysis_tour.dir/loop_analysis_tour.cpp.o.d"
  "loop_analysis_tour"
  "loop_analysis_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_analysis_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
