# Empty compiler generated dependencies file for loop_analysis_tour.
# This may be replaced when dependencies are built.
