file(REMOVE_RECURSE
  "CMakeFiles/sparse_logreg.dir/sparse_logreg.cpp.o"
  "CMakeFiles/sparse_logreg.dir/sparse_logreg.cpp.o.d"
  "sparse_logreg"
  "sparse_logreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_logreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
