# Empty compiler generated dependencies file for sparse_logreg.
# This may be replaced when dependencies are built.
